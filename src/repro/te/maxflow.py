"""PF-k: the path-formulation multi-commodity max-flow LP.

This is the optimal baseline the NCFlow paper calls "PF4" (path
formulation with four shortest paths per commodity): one flow variable
per (commodity, tunnel), demand caps per commodity, capacity caps per
link, maximize total admitted flow.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.lp import LinExpr, Model, LPBackend, SolveSession
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix
from repro.te.paths import path_links
from repro.te.solution import TESolution
from repro.te.tunnelcache import cached_k_shortest_tunnels


def solve_max_flow(
    topology: Topology,
    traffic: TrafficMatrix,
    num_paths: int = 4,
    backend: Optional[LPBackend] = None,
    tunnels: Optional[Dict[Tuple[str, str], List[List[str]]]] = None,
    session: Optional[SolveSession] = None,
) -> TESolution:
    """Solve PF-``num_paths`` max flow; returns a :class:`TESolution`.

    ``tunnels`` overrides the default k-shortest-path tunnel selection
    (ARROW and tests pass pre-built tunnels).  ``session`` routes the
    LP through a :class:`~repro.lp.SolveSession` so repeated solves
    over the same tunnel structure (sweeps, bisections) warm-start from
    the previous optimum; when given, it takes precedence over
    ``backend``.
    """
    with obs.span(f"te.pf{num_paths}.solve", topology=topology.name) as sp:
        if tunnels is None:
            tunnels = cached_k_shortest_tunnels(topology, traffic, num_paths)

        model = Model(f"pf{num_paths}:{topology.name}")
        flow_vars: Dict[Tuple[str, str], List] = {}
        link_usage: Dict[Tuple[str, str], LinExpr] = {}

        for (src, dst), paths in sorted(tunnels.items()):
            demand = traffic.demand(src, dst)
            commodity_vars = []
            for index, path in enumerate(paths):
                var = model.add_var(name=f"f[{src}->{dst}:{index}]", upper=demand)
                commodity_vars.append(var)
                for link in path_links(path):
                    link_usage.setdefault(link, LinExpr())._iadd(var)
            flow_vars[(src, dst)] = commodity_vars
            model.add_constraint(
                LinExpr.sum_of(commodity_vars) <= demand, name=f"dem[{src}->{dst}]"
            )

        for (link_src, link_dst), usage in sorted(link_usage.items()):
            model.add_constraint(
                usage <= topology.capacity(link_src, link_dst),
                name=f"cap[{link_src}->{link_dst}]",
            )

        total = LinExpr.sum_of(
            var for commodity_vars in flow_vars.values() for var in commodity_vars
        )
        model.maximize(total)
        result = _solve(model, backend, session)

        per_commodity: Dict[Tuple[str, str], float] = {}
        for key, commodity_vars in flow_vars.items():
            per_commodity[key] = sum(result.value_of(v) for v in commodity_vars)
        solution = TESolution(
            solver=f"pf{num_paths}",
            objective=result.objective,
            flow_per_commodity=per_commodity,
            lp_count=1,
            status=result.status.value,
        )
    solution.solve_seconds = sp.duration
    return solution


def _solve(model: Model, backend, session):
    """One LP solve, through the session when one is threaded in."""
    if session is not None:
        return session.solve(model).require_optimal(model)
    return model.solve(backend=backend).require_optimal(model)


def solve_max_flow_edge(
    topology: Topology,
    traffic: TrafficMatrix,
    backend: Optional[LPBackend] = None,
    session: Optional[SolveSession] = None,
) -> TESolution:
    """Edge-formulation multi-commodity max flow: the exact optimum.

    Unlike PF-k this places no restriction on the paths a commodity may
    take, so it upper-bounds every other TE solver in this package; the
    benchmarks use it as the feasibility oracle.  One flow variable per
    (commodity, edge) plus per-commodity delivery variables; conservation
    at every node; shared link capacities.
    """
    with obs.span("te.edge_maxflow.solve", topology=topology.name) as sp:
        commodities = traffic.commodities()
        edges = [(link.src, link.dst) for link in topology.links()]
        capacity = {(link.src, link.dst): link.capacity for link in topology.links()}

        model = Model(f"edge-maxflow:{topology.name}")
        link_usage: Dict[Tuple[str, str], LinExpr] = {e: LinExpr() for e in edges}
        delivered_vars = []
        for index, (src, dst, demand) in enumerate(commodities):
            delivered = model.add_var(name=f"g{index}", upper=demand)
            delivered_vars.append(((src, dst), delivered))
            flow_vars = {e: model.add_var(name=f"x{index}[{e[0]}->{e[1]}]") for e in edges}
            for e, var in flow_vars.items():
                link_usage[e]._iadd(var)
            for node in topology.nodes:
                balance = LinExpr()
                for pred in topology.predecessors(node):
                    balance._iadd(flow_vars[(pred, node)])
                for succ in topology.successors(node):
                    balance._iadd(flow_vars[(node, succ)], sign=-1.0)
                if node == src:
                    balance._iadd(delivered)
                elif node == dst:
                    balance._iadd(delivered, sign=-1.0)
                model.add_constraint(balance.equals(0.0), name=f"c{index}[{node}]")
        for e, usage in link_usage.items():
            if usage.coefs:
                model.add_constraint(usage <= capacity[e], name=f"cap[{e[0]}->{e[1]}]")
        model.maximize(LinExpr.sum_of(var for _, var in delivered_vars))
        result = _solve(model, backend, session)

        per_commodity: Dict[Tuple[str, str], float] = {}
        for key, var in delivered_vars:
            per_commodity[key] = per_commodity.get(key, 0.0) + result.value_of(var)
        solution = TESolution(
            solver="edge-maxflow",
            objective=result.objective,
            flow_per_commodity=per_commodity,
            lp_count=1,
            status=result.status.value,
        )
    solution.solve_seconds = sp.duration
    return solution
