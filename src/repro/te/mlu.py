"""Minimum max-link-utilisation TE: the other classic objective.

NCFlow and ARROW both maximise admitted flow; much of the TE literature
instead routes *all* demand while minimising the maximum link
utilisation (MLU).  This solver provides that baseline: one flow
variable per (commodity, tunnel), full-demand routing constraints, a
shared utilisation bound ``u``, minimise ``u``.

``objective`` in the returned :class:`TESolution` is the MLU (may exceed
1.0 when demand physically cannot fit -- the LP is then still feasible
and reports how much the network is over capacity).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.lp import LinExpr, Model, LPBackend, SolveSession
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix
from repro.te.paths import path_links
from repro.te.solution import TESolution
from repro.te.tunnelcache import cached_k_shortest_tunnels


def solve_min_mlu(
    topology: Topology,
    traffic: TrafficMatrix,
    num_paths: int = 4,
    backend: Optional[LPBackend] = None,
    session: Optional[SolveSession] = None,
) -> TESolution:
    """Route every commodity fully, minimising max link utilisation.

    ``session`` threads the LP through a :class:`~repro.lp.SolveSession`
    (sweeps warm-start repeated solves); it takes precedence over
    ``backend``.
    """
    with obs.span("te.mlu.solve", topology=topology.name) as sp:
        solution = _solve_min_mlu(topology, traffic, num_paths, backend, session)
    solution.solve_seconds = sp.duration
    return solution


def _solve_min_mlu(
    topology: Topology,
    traffic: TrafficMatrix,
    num_paths: int,
    backend: Optional[LPBackend],
    session: Optional[SolveSession] = None,
) -> TESolution:
    tunnels = cached_k_shortest_tunnels(topology, traffic, num_paths)

    model = Model(f"min-mlu:{topology.name}")
    mlu = model.add_var(name="u")
    link_usage: Dict[Tuple[str, str], LinExpr] = {}
    flow_vars: Dict[Tuple[str, str], List] = {}
    for (src, dst), paths in sorted(tunnels.items()):
        demand = traffic.demand(src, dst)
        commodity_vars = []
        for index, path in enumerate(paths):
            var = model.add_var(name=f"f[{src}->{dst}:{index}]")
            commodity_vars.append(var)
            for link in path_links(path):
                link_usage.setdefault(link, LinExpr())._iadd(var)
        flow_vars[(src, dst)] = commodity_vars
        model.add_constraint(
            LinExpr.sum_of(commodity_vars).equals(demand),
            name=f"route[{src}->{dst}]",
        )
    for (link_src, link_dst), usage in sorted(link_usage.items()):
        capacity = topology.capacity(link_src, link_dst)
        if capacity <= 0:
            continue
        # usage <= u * capacity
        bound = usage - LinExpr({mlu.index: capacity})
        model.add_constraint(bound <= 0.0, name=f"util[{link_src}->{link_dst}]")
    model.minimize(LinExpr.from_term(mlu))
    if session is not None:
        result = session.solve(model).require_optimal(model)
    else:
        result = model.solve(backend=backend).require_optimal(model)

    per_commodity: Dict[Tuple[str, str], float] = {}
    for key, commodity_vars in flow_vars.items():
        per_commodity[key] = sum(result.value_of(v) for v in commodity_vars)
    return TESolution(
        solver="min-mlu",
        objective=result.objective,
        flow_per_commodity=per_commodity,
        lp_count=1,
        status=result.status.value,
    )
