"""NCFlow: contracting WAN topologies to solve flow problems quickly.

Implementation of Abuzaid et al. (NSDI 2021), the system participant A
reproduced.  The algorithm replaces one monolithic multi-commodity flow
LP with a sequence of much smaller ones:

1. partition the nodes into clusters (:mod:`repro.te.ncflow.partition`);
2. contract the WAN: one node per cluster, inter-cluster capacities
   aggregated, demands bundled per cluster pair;
3. ``R1``: solve max flow on the contracted graph;
4. allocate each contracted edge's flow onto the physical inter-cluster
   links (capacity-proportional, so neighbouring clusters always agree --
   the role NCFlow's reconciliation step plays);
5. ``R2``: per cluster, solve an edge-formulation flow problem routing
   intra-cluster commodities and the transit segments implied by R1;
6. combine conservatively: each bundle's end-to-end flow is the minimum
   of its segment fractions, so the result is always feasible and at most
   the PF4 optimum.

The solver can try several candidate partitions and keep the best result,
like the original system.
"""

from repro.te.ncflow.partition import (
    Partition,
    label_propagation_partition,
    modularity_partition,
    random_partition,
)
from repro.te.ncflow.solver import NCFlowSolver, NCFlowRun

__all__ = [
    "NCFlowRun",
    "NCFlowSolver",
    "Partition",
    "label_propagation_partition",
    "modularity_partition",
    "random_partition",
]
