"""Node partitioning for NCFlow's contraction step.

NCFlow's quality depends on the partition: clusters should be connected,
balanced, and cut few high-capacity links.  The original system evaluates
FM partitioning, spectral clustering and leader election; here we provide
modularity communities (default), label propagation, and seeded random
partitions (ablation baseline), all normalised into a :class:`Partition`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx
import numpy as np

from repro.netmodel.topology import Topology


@dataclass
class Partition:
    """A node -> cluster-id assignment with convenience views."""

    cluster_of: Dict[str, int]
    method: str = "unknown"

    def __post_init__(self):
        # Normalise ids to 0..k-1 in order of first appearance by node name.
        remap: Dict[int, int] = {}
        for node in sorted(self.cluster_of):
            old = self.cluster_of[node]
            if old not in remap:
                remap[old] = len(remap)
        self.cluster_of = {
            node: remap[old] for node, old in self.cluster_of.items()
        }

    @property
    def num_clusters(self) -> int:
        return len(set(self.cluster_of.values()))

    def members(self, cluster: int) -> List[str]:
        return sorted(
            node for node, cid in self.cluster_of.items() if cid == cluster
        )

    def clusters(self) -> List[int]:
        return sorted(set(self.cluster_of.values()))

    def cut_links(self, topology: Topology) -> int:
        """Number of directed links crossing cluster boundaries."""
        return sum(
            1
            for link in topology.links()
            if self.cluster_of[link.src] != self.cluster_of[link.dst]
        )


def default_num_clusters(num_nodes: int) -> int:
    """NCFlow's guidance: about sqrt(n) clusters."""
    return max(2, int(round(math.sqrt(num_nodes))))


def _merge_connected(
    groups: List[List[str]], undirected: "nx.Graph", target: int
) -> List[List[str]]:
    """Merge groups down to ``target``, only ever joining adjacent groups.

    Input groups are first split into connected components, so every
    output cluster induces a connected subgraph -- a requirement for
    NCFlow's per-cluster flow problems to be solvable.
    """
    work: List[set] = []
    for group in groups:
        sub = undirected.subgraph(group)
        for component in nx.connected_components(sub):
            work.append(set(component))

    def adjacency_weight(a: set, b: set) -> int:
        return sum(1 for u in a for v in undirected.neighbors(u) if v in b)

    while len(work) > target:
        work.sort(key=lambda g: (len(g), min(g)))
        smallest = work.pop(0)
        best_index, best_weight = -1, -1
        for index, other in enumerate(work):
            weight = adjacency_weight(smallest, other)
            if weight > best_weight:
                best_index, best_weight = index, weight
        if best_weight <= 0:
            # Disconnected topology: fall back to the next smallest group.
            best_index = 0
        work[best_index] = work[best_index] | smallest
    return [sorted(g) for g in work]


def _to_partition(groups: List[List[str]], method: str) -> Partition:
    cluster_of = {}
    for cid, group in enumerate(sorted(groups, key=lambda g: g[0])):
        for node in group:
            cluster_of[node] = cid
    return Partition(cluster_of, method=method)


def modularity_partition(
    topology: Topology, num_clusters: Optional[int] = None
) -> Partition:
    """Greedy modularity communities, merged down to ``num_clusters``."""
    target = num_clusters or default_num_clusters(topology.num_nodes)
    undirected = topology.to_networkx().to_undirected()
    communities = list(
        nx.algorithms.community.greedy_modularity_communities(
            undirected, cutoff=min(target, topology.num_nodes)
        )
    )
    groups = _merge_connected([sorted(c) for c in communities], undirected, target)
    return _to_partition(groups, "modularity")


def label_propagation_partition(
    topology: Topology, seed: int = 0, num_clusters: Optional[int] = None
) -> Partition:
    """Label-propagation communities (what a quick reproduction might use).

    Produces coarser, less balanced clusters than modularity -- a source
    of small objective differences between the reference and reproduced
    NCFlow runs.
    """
    target = num_clusters or default_num_clusters(topology.num_nodes)
    undirected = topology.to_networkx().to_undirected()
    communities = list(
        nx.algorithms.community.asyn_lpa_communities(undirected, seed=seed)
    )
    groups = _merge_connected([sorted(c) for c in communities], undirected, target)
    return _to_partition(groups, "label-propagation")


def random_partition(
    topology: Topology, seed: int = 0, num_clusters: Optional[int] = None
) -> Partition:
    """Seeded random balanced partition (ablation baseline).

    Ignores the graph structure entirely, so it cuts many links -- the
    ablation benchmark uses it to show how much the partition quality
    matters to NCFlow.
    """
    target = num_clusters or default_num_clusters(topology.num_nodes)
    rng = np.random.RandomState(seed)
    nodes = list(topology.nodes)
    rng.shuffle(nodes)
    cluster_of = {node: index % target for index, node in enumerate(nodes)}
    return Partition(cluster_of, method="random")
