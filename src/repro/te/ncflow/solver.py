"""The NCFlow decomposition solver.

See the package docstring for the algorithm outline.  The implementation
keeps NCFlow's feasibility guarantee through two conservative devices:

* contracted-edge flow is allocated to physical inter-cluster links in
  proportion to capacity, so neighbouring clusters always agree on the
  border amounts (playing the role of NCFlow's reconciliation step);
* each cluster routes a transit segment as a *scaled copy* of its planned
  border amounts (one fraction variable per segment), so per-bundle
  segments can be rescaled to the minimum fraction along the bundle's
  cluster path and concatenate into a valid end-to-end flow.

Like the original system, the solver then *iterates*: it subtracts the
capacity the first pass used and re-runs the decomposition on the
residual topology and residual demands, which recovers most of the flow a
single conservative pass leaves behind.

The objective is therefore always feasible and at most the PF4 optimum,
matching the original system's "always-feasible, near-optimal" contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.lp import FastLPBackend, LinExpr, Model, LPBackend, SolveSession
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix
from repro.te.ncflow.partition import (
    Partition,
    label_propagation_partition,
    modularity_partition,
    random_partition,
)
from repro.te.paths import path_links
from repro.te.solution import TESolution
from repro.te.tunnelcache import cached_k_shortest_tunnels

Commodity = Tuple[str, str]
Bundle = Tuple[int, int]
Edge = Tuple[str, str]

_EPS = 1e-9


@dataclass
class _Segment:
    """One bundle-path's traversal of one cluster."""

    bundle: Bundle
    path_index: int
    flow: float
    # Planned injections/extractions at cluster nodes, both summing to flow.
    supply: Dict[str, float] = field(default_factory=dict)
    sink: Dict[str, float] = field(default_factory=dict)


@dataclass
class NCFlowRun:
    """Result of one partition's single decomposition pass."""

    partition: Partition
    solution: TESolution
    r1_objective: float = 0.0
    segment_fractions: Dict[Tuple[Bundle, int], float] = field(default_factory=dict)
    link_usage: Dict[Edge, float] = field(default_factory=dict)


class NCFlowSolver:
    """Contract-and-decompose TE solver.

    ``partitioners`` names the candidate partitioning methods; the best
    objective wins, like the original system's partition search.
    ``num_iterations`` controls the residual re-solve passes.
    ``warm_start`` keeps one LP solve session per decomposition slot
    (R1, plus one per (partition, cluster) R2) so residual passes over
    the same contracted structure warm-start from the previous pass's
    optimum; passes whose variable count changed (a bundle path dried
    up, an intra demand hit zero) transparently solve cold.
    """

    def __init__(
        self,
        num_paths: int = 4,
        backend: Optional[LPBackend] = None,
        partitioners: Optional[List[str]] = None,
        num_iterations: int = 3,
        seed: int = 7,
        warm_start: bool = False,
    ):
        if num_iterations < 1:
            raise ValueError("num_iterations must be >= 1")
        self.num_paths = num_paths
        self.backend = backend
        # Like the original system, search more than one candidate
        # partition and keep the best result.
        self.partitioners = partitioners or ["modularity", "label-propagation"]
        self.num_iterations = num_iterations
        self.seed = seed
        self.warm_start = warm_start
        self._sessions: Dict[str, SolveSession] = {}

    def _session(self, key: str) -> Optional[SolveSession]:
        """The per-slot warm session, or ``None`` when warm is off."""
        if not self.warm_start:
            return None
        session = self._sessions.get(key)
        if session is None:
            backend = self.backend if self.backend is not None else FastLPBackend()
            session = backend.session()
            self._sessions[key] = session
        return session

    def _solve_model(self, model: Model, session_key: str):
        """Solve one decomposition LP, through its session when warm."""
        session = self._session(session_key)
        if session is not None:
            return session.solve(model).require_optimal(model)
        return model.solve(backend=self.backend).require_optimal(model)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(self, topology: Topology, traffic: TrafficMatrix) -> TESolution:
        """Best iterated solution across the configured partitions."""
        best: Optional[TESolution] = None
        lp_count = 0
        with obs.span(
            "te.ncflow.solve",
            topology=topology.name,
            commodities=len(traffic.demands),
        ) as sp:
            for name in self.partitioners:
                with obs.span("te.ncflow.partition", method=name):
                    partition = self._make_partition(name, topology)
                candidate = self.solve_iterated(topology, traffic, partition)
                lp_count += candidate.lp_count
                if best is None or candidate.objective > best.objective:
                    best = candidate
            if best is None:
                raise ValueError("no candidate partitions configured")
            sp.set(objective=best.objective, lp_count=lp_count)
        best.solve_seconds = sp.duration
        best.lp_count = lp_count
        return best

    def solve_iterated(
        self,
        topology: Topology,
        traffic: TrafficMatrix,
        partition: Partition,
    ) -> TESolution:
        """Run the decomposition on residual capacity until flow dries up."""
        with obs.span("te.ncflow.iterate", clusters=partition.num_clusters) as sp:
            residual_topo = topology.copy()
            remaining = TrafficMatrix(dict(traffic.demands))
            total_objective = 0.0
            per_commodity: Dict[Commodity, float] = {}
            lp_count = 0
            for _ in range(self.num_iterations):
                run = self.solve_with_partition(residual_topo, remaining, partition)
                lp_count += run.solution.lp_count
                if run.solution.objective <= max(_EPS, 1e-6 * traffic.total_demand):
                    break
                total_objective += run.solution.objective
                for commodity, amount in run.solution.flow_per_commodity.items():
                    per_commodity[commodity] = per_commodity.get(commodity, 0.0) + amount
                    remaining.demands[commodity] = max(
                        0.0, remaining.demands.get(commodity, 0.0) - amount
                    )
                for (src, dst), used in run.link_usage.items():
                    left = max(0.0, residual_topo.capacity(src, dst) - used)
                    residual_topo.set_capacity(src, dst, left)
        return TESolution(
            solver="ncflow",
            objective=total_objective,
            flow_per_commodity=per_commodity,
            solve_seconds=sp.duration,
            lp_count=lp_count,
        )

    def _make_partition(self, name: str, topology: Topology) -> Partition:
        if name == "modularity":
            return modularity_partition(topology)
        if name == "label-propagation":
            return label_propagation_partition(topology, seed=self.seed)
        if name == "random":
            return random_partition(topology, seed=self.seed)
        raise KeyError(f"unknown partitioner {name!r}")

    # ------------------------------------------------------------------
    # One decomposition pass
    # ------------------------------------------------------------------
    def solve_with_partition(
        self,
        topology: Topology,
        traffic: TrafficMatrix,
        partition: Partition,
    ) -> NCFlowRun:
        with obs.span("te.ncflow.pass", method=partition.method) as sp:
            run = self._solve_pass(topology, traffic, partition)
        run.solution.solve_seconds = sp.duration
        return run

    def _solve_pass(
        self,
        topology: Topology,
        traffic: TrafficMatrix,
        partition: Partition,
    ) -> NCFlowRun:
        cluster_of = partition.cluster_of

        # Split commodities into inter-cluster bundles and intra lists.
        bundle_demand: Dict[Bundle, float] = {}
        bundle_members: Dict[Bundle, List[Tuple[Commodity, float]]] = {}
        intra: Dict[int, List[Tuple[Commodity, float]]] = {}
        for src, dst, amount in traffic.commodities():
            cs, cd = cluster_of[src], cluster_of[dst]
            if cs == cd:
                intra.setdefault(cs, []).append(((src, dst), amount))
            else:
                bundle = (cs, cd)
                bundle_demand[bundle] = bundle_demand.get(bundle, 0.0) + amount
                bundle_members.setdefault(bundle, []).append(((src, dst), amount))

        contracted, border_links = _contract(topology, partition)

        # R1: max flow on the contracted graph.
        with obs.span("te.ncflow.r1", bundles=len(bundle_demand)):
            r1_flows, r1_objective = self._solve_r1(
                contracted, bundle_demand,
                session_key=f"r1:{partition.method}",
            )

        # Build per-cluster segments from the R1 paths.
        segments: Dict[int, List[_Segment]] = {c: [] for c in partition.clusters()}
        for (bundle, path_index), (cluster_path, flow) in sorted(r1_flows.items()):
            if flow <= _EPS:
                continue
            self._build_segments(
                segments, bundle, path_index, cluster_path, flow,
                bundle_members, border_links,
            )

        # R2 per cluster.
        fractions: Dict[Tuple[Bundle, int], float] = {}
        seg_cluster_results: List[Tuple[_Segment, float, Dict[Edge, float]]] = []
        intra_delivered: Dict[Commodity, float] = {}
        link_usage: Dict[Edge, float] = {}
        lp_count = 1
        for cluster in partition.clusters():
            members = partition.members(cluster)
            cluster_topo = topology.subgraph(members, name=f"cluster{cluster}")
            cluster_segments = segments.get(cluster, [])
            cluster_intra = intra.get(cluster, [])
            if not cluster_segments and not cluster_intra:
                continue
            lp_count += 1
            with obs.span(
                "te.ncflow.r2",
                cluster=cluster,
                segments=len(cluster_segments),
                intra=len(cluster_intra),
            ):
                seg_results, delivered, intra_usage = self._solve_r2(
                    cluster_topo, cluster_segments, cluster_intra,
                    session_key=f"r2:{partition.method}:{cluster}",
                )
            seg_cluster_results.extend(seg_results)
            for segment, fraction, _ in seg_results:
                key = (segment.bundle, segment.path_index)
                fractions[key] = min(fractions.get(key, 1.0), fraction)
            for commodity, amount in delivered.items():
                intra_delivered[commodity] = (
                    intra_delivered.get(commodity, 0.0) + amount
                )
            for edge, used in intra_usage.items():
                link_usage[edge] = link_usage.get(edge, 0.0) + used

        # Intra-cluster usage of transit segments, rescaled to the final
        # bundle-path fraction (phi_final / phi_cluster per cluster).
        for segment, cluster_fraction, edge_flows in seg_cluster_results:
            final = fractions.get((segment.bundle, segment.path_index), 0.0)
            if final <= _EPS or cluster_fraction <= _EPS:
                continue
            scale = final / cluster_fraction
            for edge, flow in edge_flows.items():
                link_usage[edge] = link_usage.get(edge, 0.0) + flow * scale

        # Combine: every bundle path is scaled to its minimum fraction;
        # border-link usage follows the capacity-proportional allocation.
        per_commodity: Dict[Commodity, float] = dict(intra_delivered)
        objective = sum(intra_delivered.values())
        bundle_flow: Dict[Bundle, float] = {}
        for (bundle, path_index), (cluster_path, flow) in sorted(r1_flows.items()):
            if flow <= _EPS:
                continue
            fraction = fractions.get((bundle, path_index), 1.0)
            realized = flow * fraction
            if realized <= _EPS:
                continue
            bundle_flow[bundle] = bundle_flow.get(bundle, 0.0) + realized
            objective += realized
            for hop_a, hop_b in zip(cluster_path, cluster_path[1:]):
                links = border_links[(hop_a, hop_b)]
                cap_sum = sum(capacity for _, _, capacity in links)
                if cap_sum <= 0.0:
                    continue
                for link_src, link_dst, capacity in links:
                    used = realized * capacity / cap_sum
                    link_usage[(link_src, link_dst)] = (
                        link_usage.get((link_src, link_dst), 0.0) + used
                    )
        for bundle, realized in bundle_flow.items():
            total = bundle_demand[bundle]
            for commodity, amount in bundle_members[bundle]:
                share = realized * amount / total if total > 0 else 0.0
                per_commodity[commodity] = per_commodity.get(commodity, 0.0) + share

        solution = TESolution(
            solver="ncflow",
            objective=objective,
            flow_per_commodity=per_commodity,
            lp_count=lp_count,
        )
        return NCFlowRun(
            partition=partition,
            solution=solution,
            r1_objective=r1_objective,
            segment_fractions=fractions,
            link_usage=link_usage,
        )

    # ------------------------------------------------------------------
    # R1
    # ------------------------------------------------------------------
    def _solve_r1(
        self,
        contracted: Topology,
        bundle_demand: Dict[Bundle, float],
        session_key: str = "r1",
    ) -> Tuple[Dict[Tuple[Bundle, int], Tuple[List[int], float]], float]:
        """Max flow on the contracted graph; keeps per-path flows.

        Returns ``{(bundle, path_index): (cluster path, flow)}`` and the
        R1 objective.
        """
        model = Model("ncflow-r1")
        link_usage: Dict[Edge, LinExpr] = {}
        path_vars: Dict[Tuple[Bundle, int], Tuple[List[int], object]] = {}
        all_vars = []
        # Tunnel selection on the contracted graph goes through the shared
        # cache: residual re-solve passes drain capacities but keep the
        # contracted structure, so every pass after the first is a hit.
        bundle_traffic = TrafficMatrix({
            (f"C{a}", f"C{b}"): demand
            for (a, b), demand in bundle_demand.items()
        })
        tunnels = cached_k_shortest_tunnels(
            contracted, bundle_traffic, self.num_paths
        )
        for bundle in sorted(bundle_demand):
            demand = bundle_demand[bundle]
            src, dst = f"C{bundle[0]}", f"C{bundle[1]}"
            paths = tunnels.get((src, dst), [])
            if not paths:
                continue
            commodity_vars = []
            for index, path in enumerate(paths):
                var = model.add_var(
                    name=f"b[{bundle[0]}-{bundle[1]}:{index}]", upper=demand
                )
                commodity_vars.append(var)
                all_vars.append(var)
                cluster_path = [int(node[1:]) for node in path]
                path_vars[(bundle, index)] = (cluster_path, var)
                for link in path_links(path):
                    link_usage.setdefault(link, LinExpr())._iadd(var)
            model.add_constraint(
                LinExpr.sum_of(commodity_vars) <= demand,
                name=f"dem[{bundle[0]}-{bundle[1]}]",
            )
        for (link_src, link_dst), usage in sorted(link_usage.items()):
            model.add_constraint(
                usage <= contracted.capacity(link_src, link_dst),
                name=f"cap[{link_src}->{link_dst}]",
            )
        model.maximize(LinExpr.sum_of(all_vars))
        result = self._solve_model(model, session_key)
        flows: Dict[Tuple[Bundle, int], Tuple[List[int], float]] = {}
        objective = result.objective
        for key, (cluster_path, var) in path_vars.items():
            flows[key] = (cluster_path, result.value_of(var))
        return flows, objective

    # ------------------------------------------------------------------
    # Segment construction
    # ------------------------------------------------------------------
    def _build_segments(
        self,
        segments: Dict[int, List[_Segment]],
        bundle: Bundle,
        path_index: int,
        cluster_path: List[int],
        flow: float,
        bundle_members: Dict[Bundle, List[Tuple[Commodity, float]]],
        border_links: Dict[Tuple[int, int], List[Tuple[str, str, float]]],
    ) -> None:
        members = bundle_members[bundle]
        total = sum(amount for _, amount in members)

        def allocation(cluster_a: int, cluster_b: int) -> Dict[str, Dict[str, float]]:
            """Planned flow per border node: ``{"exit": ..., "entry": ...}``."""
            links = border_links[(cluster_a, cluster_b)]
            cap_sum = sum(capacity for _, _, capacity in links)
            exit_amounts: Dict[str, float] = {}
            entry_amounts: Dict[str, float] = {}
            if cap_sum <= 0.0:
                # Numerical residue can put an epsilon flow on a drained
                # aggregate edge; an empty plan zeroes the segment.
                return {"exit": exit_amounts, "entry": entry_amounts}
            for link_src, link_dst, capacity in links:
                share = flow * capacity / cap_sum
                exit_amounts[link_src] = exit_amounts.get(link_src, 0.0) + share
                entry_amounts[link_dst] = entry_amounts.get(link_dst, 0.0) + share
            return {"exit": exit_amounts, "entry": entry_amounts}

        hop_alloc = [
            allocation(a, b) for a, b in zip(cluster_path, cluster_path[1:])
        ]
        for position, cluster in enumerate(cluster_path):
            segment = _Segment(bundle=bundle, path_index=path_index, flow=flow)
            if position == 0:
                for (src, _), amount in members:
                    scaled = flow * amount / total if total > 0 else 0.0
                    segment.supply[src] = segment.supply.get(src, 0.0) + scaled
            else:
                segment.supply = dict(hop_alloc[position - 1]["entry"])
            if position == len(cluster_path) - 1:
                for (_, dst), amount in members:
                    scaled = flow * amount / total if total > 0 else 0.0
                    segment.sink[dst] = segment.sink.get(dst, 0.0) + scaled
            else:
                segment.sink = dict(hop_alloc[position]["exit"])
            segments[cluster].append(segment)

    # ------------------------------------------------------------------
    # R2
    # ------------------------------------------------------------------
    def _solve_r2(
        self,
        cluster_topo: Topology,
        cluster_segments: List[_Segment],
        cluster_intra: List[Tuple[Commodity, float]],
        session_key: str = "r2",
    ) -> Tuple[
        List[Tuple[_Segment, float, Dict[Edge, float]]],
        Dict[Commodity, float],
        Dict[Edge, float],
    ]:
        """Route segments (scaled copies) and intra commodities in a cluster.

        Returns ``(segment, fraction, per-edge flow)`` triples, delivered
        intra flow per commodity, and the intra commodities' edge usage.
        """
        model = Model(f"ncflow-r2:{cluster_topo.name}")
        edges = [(link.src, link.dst) for link in cluster_topo.links()]
        capacity = {
            (link.src, link.dst): link.capacity for link in cluster_topo.links()
        }
        link_usage: Dict[Edge, LinExpr] = {e: LinExpr() for e in edges}
        nodes = cluster_topo.nodes

        objective = LinExpr()
        seg_entries: List[Tuple[_Segment, object, Dict[Edge, object]]] = []
        for seg_id, segment in enumerate(cluster_segments):
            phi = model.add_var(name=f"phi{seg_id}", upper=1.0)
            flow_vars = {
                e: model.add_var(name=f"s{seg_id}[{e[0]}->{e[1]}]") for e in edges
            }
            seg_entries.append((segment, phi, flow_vars))
            for e, var in flow_vars.items():
                link_usage[e]._iadd(var)
            for node in nodes:
                balance = LinExpr()
                for pred in cluster_topo.predecessors(node):
                    balance._iadd(flow_vars[(pred, node)])
                for succ in cluster_topo.successors(node):
                    balance._iadd(flow_vars[(node, succ)], sign=-1.0)
                net = segment.supply.get(node, 0.0) - segment.sink.get(node, 0.0)
                if net != 0.0:
                    balance._iadd(phi, sign=net)
                model.add_constraint(
                    balance.equals(0.0), name=f"cons{seg_id}[{node}]"
                )
            objective._iadd(phi, sign=segment.flow)

        intra_entries: List[Tuple[Commodity, object, Dict[Edge, object]]] = []
        for intra_id, (commodity, demand) in enumerate(cluster_intra):
            src, dst = commodity
            delivered = model.add_var(name=f"g{intra_id}", upper=demand)
            flow_vars = {
                e: model.add_var(name=f"i{intra_id}[{e[0]}->{e[1]}]") for e in edges
            }
            intra_entries.append((commodity, delivered, flow_vars))
            for e, var in flow_vars.items():
                link_usage[e]._iadd(var)
            for node in nodes:
                balance = LinExpr()
                for pred in cluster_topo.predecessors(node):
                    balance._iadd(flow_vars[(pred, node)])
                for succ in cluster_topo.successors(node):
                    balance._iadd(flow_vars[(node, succ)], sign=-1.0)
                if node == src:
                    balance._iadd(delivered)
                elif node == dst:
                    balance._iadd(delivered, sign=-1.0)
                model.add_constraint(
                    balance.equals(0.0), name=f"icons{intra_id}[{node}]"
                )
            objective._iadd(delivered)

        for e, usage in link_usage.items():
            if usage.coefs:
                model.add_constraint(usage <= capacity[e], name=f"cap[{e[0]}->{e[1]}]")

        model.maximize(objective)
        result = self._solve_model(model, session_key)

        seg_results: List[Tuple[_Segment, float, Dict[Edge, float]]] = []
        delivered_flow: Dict[Commodity, float] = {}
        intra_usage: Dict[Edge, float] = {}
        for segment, phi, flow_vars in seg_entries:
            edge_flows = {
                e: result.value_of(var)
                for e, var in flow_vars.items()
                if result.value_of(var) > _EPS
            }
            seg_results.append((segment, result.value_of(phi), edge_flows))
        for commodity, delivered, flow_vars in intra_entries:
            delivered_flow[commodity] = (
                delivered_flow.get(commodity, 0.0) + result.value_of(delivered)
            )
            for e, var in flow_vars.items():
                value = result.value_of(var)
                if value > _EPS:
                    intra_usage[e] = intra_usage.get(e, 0.0) + value
        return seg_results, delivered_flow, intra_usage


def _contract(
    topology: Topology, partition: Partition
) -> Tuple[Topology, Dict[Tuple[int, int], List[Tuple[str, str, float]]]]:
    """Contracted cluster graph plus the physical border links per pair."""
    cluster_of = partition.cluster_of
    contracted = Topology(f"{topology.name}/contracted")
    for cluster in partition.clusters():
        contracted.add_node(f"C{cluster}")
    border_links: Dict[Tuple[int, int], List[Tuple[str, str, float]]] = {}
    aggregated: Dict[Tuple[int, int], float] = {}
    for link in topology.links():
        ca, cb = cluster_of[link.src], cluster_of[link.dst]
        if ca == cb:
            continue
        key = (ca, cb)
        border_links.setdefault(key, []).append((link.src, link.dst, link.capacity))
        aggregated[key] = aggregated.get(key, 0.0) + link.capacity
    for (ca, cb), capacity in sorted(aggregated.items()):
        contracted.add_link(f"C{ca}", f"C{cb}", capacity)
    return contracted, border_links
