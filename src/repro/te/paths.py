"""Tunnel (path) helpers shared by the TE solvers."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix


def path_links(path: List[str]) -> List[Tuple[str, str]]:
    """Directed links traversed by a node path."""
    return list(zip(path, path[1:]))


def k_shortest_tunnels(
    topology: Topology,
    traffic: TrafficMatrix,
    k: int,
) -> Dict[Tuple[str, str], List[List[str]]]:
    """Up to ``k`` loop-free shortest paths for every nonzero commodity.

    Commodities with no path at all are omitted (they can never carry
    flow, and the LPs should not see them).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    tunnels: Dict[Tuple[str, str], List[List[str]]] = {}
    for src, dst, _ in traffic.commodities():
        paths = topology.k_shortest_paths(src, dst, k)
        if paths:
            tunnels[(src, dst)] = paths
    return tunnels
