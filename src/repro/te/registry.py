"""Unified TE solver layer: one protocol, one registry, injected backends.

The TE substrate grew as a mix of free functions (``solve_max_flow``,
``solve_min_mlu``, ``solve_fleischer``) and classes (``NCFlowSolver``,
``ArrowSolver``), each wiring its own LP backend.  This module puts all
of them behind a single surface:

* :class:`TESolver` -- the protocol every solver satisfies: ``name``,
  ``capabilities``, ``solve(topology, traffic) -> TESolution``;
* :class:`SolverSpec` -- a named factory plus
  :class:`SolverCapabilities`, stored in a process-wide registry;
* :func:`make_solver` / :func:`solve` -- resolve a solver by name with
  an explicitly injected :class:`~repro.lp.LPBackend` (``None`` keeps
  each solver's default, a string goes through
  :func:`repro.lp.get_backend`).

Every solver resolved through the registry is instrumented uniformly: a
``te.registry.solve`` span plus a ``solver.solve_calls`` counter and a
``solver.solve_seconds`` histogram, both labeled ``solver=<name>`` (the
unlabeled family series carries the cross-solver totals).  Unknown
names raise :class:`UnknownSolverError` carrying close-match
suggestions.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Union, runtime_checkable

from repro import obs
from repro.lp import LPBackend, get_backend
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix
from repro.te.solution import TESolution

SolveFn = Callable[[Topology, TrafficMatrix], TESolution]
BackendLike = Union[LPBackend, str, None]

#: Relative objective bound warm chains of non-``warm_start_exact``
#: solvers are held to (vs a per-scale cold solve).  The recorded
#: ncflow divergences are ~0.4% (a warm session steering the partition
#: search onto a neighbouring decomposition); 5% leaves headroom while
#: still catching a genuinely broken warm path.
WARM_APPROX_RELATIVE_BOUND = 0.05


@dataclass(frozen=True)
class SolverCapabilities:
    """What a registered solver can do, for listings and dispatch.

    ``objective`` is ``"max-flow"`` (objective = admitted Mbps) or
    ``"min-mlu"`` (objective = max link utilisation).  ``exact`` marks
    solvers that find the true optimum of the unrestricted edge
    formulation.  ``uses_tunnels`` marks solvers whose model building
    goes through the shared tunnel cache.  ``supports_warm_start``
    marks solvers whose factory accepts ``warm=True`` / ``session=`` to
    thread an LP :class:`~repro.lp.SolveSession` across repeated solves
    (sweeps and bisections exploit this).  ``approximate`` marks
    solvers whose objective may fall short of the LP optimum by design
    (FPTAS rounds, early-stopping decompositions).

    ``warm_start_exact`` qualifies ``supports_warm_start``: when True,
    a warm session chain is an optimisation only and must reproduce
    per-scale cold objectives exactly (the LP pricing loop runs to
    optimality).  Solvers whose warm session threads through a
    heuristic decomposition -- ncflow's partition search + residual
    passes -- can land on a different (still feasible) decomposition
    than a cold solve, so they set this False and are held to
    :data:`WARM_APPROX_RELATIVE_BOUND` instead of exact equality.
    """

    objective: str = "max-flow"
    uses_lp: bool = True
    uses_tunnels: bool = True
    exact: bool = False
    failure_aware: bool = False
    supports_warm_start: bool = False
    approximate: bool = False
    warm_start_exact: bool = True

    def summary(self) -> str:
        tags = [self.objective]
        tags.append("lp" if self.uses_lp else "no-lp")
        if self.uses_tunnels:
            tags.append("tunnels")
        if self.exact:
            tags.append("exact")
        if self.failure_aware:
            tags.append("failure-aware")
        if self.supports_warm_start:
            tags.append("warm" if self.warm_start_exact else "warm-approx")
        if self.approximate:
            tags.append("approx")
        return ",".join(tags)


@runtime_checkable
class TESolver(Protocol):
    """The one interface call sites program against."""

    name: str
    capabilities: SolverCapabilities

    def solve(self, topology: Topology, traffic: TrafficMatrix) -> TESolution:
        ...


class UnknownSolverError(KeyError):
    """Raised when a solver name is not in the registry."""

    def __init__(self, name: str, known: List[str]):
        self.solver_name = name
        self.known = known
        self.suggestions = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
        message = f"unknown TE solver {name!r}"
        if self.suggestions:
            message += "; did you mean: " + ", ".join(self.suggestions) + "?"
        message += f" (registered: {', '.join(known)})"
        super().__init__(message)

    def __str__(self) -> str:
        return self.args[0]


class _RegisteredSolver:
    """Uniform adapter the registry hands out: instruments every solve."""

    __slots__ = ("name", "capabilities", "_solve_fn")

    def __init__(self, name: str, capabilities: SolverCapabilities, solve_fn: SolveFn):
        self.name = name
        self.capabilities = capabilities
        self._solve_fn = solve_fn

    def solve(self, topology: Topology, traffic: TrafficMatrix) -> TESolution:
        obs.metrics.counter("solver.solve_calls", solver=self.name).inc()
        with obs.span(
            "te.registry.solve", solver=self.name, topology=topology.name
        ) as sp:
            solution = self._solve_fn(topology, traffic)
            sp.set(objective=solution.objective, status=solution.status)
        obs.metrics.histogram(
            "solver.solve_seconds", solver=self.name
        ).observe(sp.duration)
        return solution

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TESolver({self.name!r}, {self.capabilities.summary()})"


@dataclass(frozen=True)
class SolverSpec:
    """A registered solver: name, factory, capabilities, description.

    ``factory(backend=None, **options)`` returns a bare
    ``solve(topology, traffic)`` callable; :meth:`create` wraps it in the
    instrumented adapter.  ``backend`` is always threaded through
    explicitly -- no registered solver constructs its own LP backend.
    """

    name: str
    factory: Callable[..., SolveFn]
    capabilities: SolverCapabilities
    description: str = ""

    def create(self, backend: BackendLike = None, **options) -> TESolver:
        if isinstance(backend, str):
            backend = get_backend(backend)
        return _RegisteredSolver(
            self.name, self.capabilities, self.factory(backend=backend, **options)
        )


_REGISTRY: Dict[str, SolverSpec] = {}


def register(spec: SolverSpec, replace: bool = False) -> SolverSpec:
    """Add ``spec`` to the registry; re-registration requires ``replace``."""
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"solver {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> SolverSpec:
    """Remove and return a registered spec (tests registering probe
    solvers clean up with ``try/finally: unregister(...)``)."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise UnknownSolverError(name, solver_names()) from None


def solver_names() -> List[str]:
    """All registered solver names, sorted."""
    return sorted(_REGISTRY)


def get_spec(name: str) -> SolverSpec:
    """The :class:`SolverSpec` for ``name``; raises :class:`UnknownSolverError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownSolverError(name, solver_names()) from None


def make_solver(name: str, backend: BackendLike = None, **options) -> TESolver:
    """Resolve ``name`` to an instrumented :class:`TESolver` instance."""
    return get_spec(name).create(backend=backend, **options)


def solve(
    name: str,
    topology: Topology,
    traffic: TrafficMatrix,
    backend: BackendLike = None,
    **options,
) -> TESolution:
    """One-shot convenience: ``make_solver(name, ...).solve(...)``."""
    return make_solver(name, backend=backend, **options).solve(topology, traffic)


def render_table() -> str:
    """Plain-text listing of every registered solver (``--solver list``)."""
    lines = [f"{'solver':<14} {'capabilities':<38} description"]
    for name in solver_names():
        spec = _REGISTRY[name]
        lines.append(
            f"{name:<14} {spec.capabilities.summary():<38} {spec.description}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Built-in solvers
# ----------------------------------------------------------------------
def _warm_session(backend: Optional[LPBackend], warm: bool, session):
    """Resolve the session a warm-capable factory threads through.

    An explicit ``session`` wins; otherwise ``warm=True`` opens a fresh
    session on ``backend`` (default the fast personality).  The session
    is created once per factory call, so every solve of the returned
    solver shares it -- that is what makes a sweep warm.
    """
    if session is not None:
        return session
    if not warm:
        return None
    from repro.lp import FastLPBackend

    resolved = backend if backend is not None else FastLPBackend()
    return resolved.session()


def _pf_factory(
    backend: Optional[LPBackend] = None,
    num_paths: int = 4,
    warm: bool = False,
    session=None,
) -> SolveFn:
    from repro.te.maxflow import solve_max_flow

    lp_session = _warm_session(backend, warm, session)

    def run(topology: Topology, traffic: TrafficMatrix) -> TESolution:
        return solve_max_flow(
            topology, traffic, num_paths=num_paths, backend=backend,
            session=lp_session,
        )

    return run


def _edge_factory(
    backend: Optional[LPBackend] = None,
    warm: bool = False,
    session=None,
) -> SolveFn:
    from repro.te.maxflow import solve_max_flow_edge

    lp_session = _warm_session(backend, warm, session)

    def run(topology: Topology, traffic: TrafficMatrix) -> TESolution:
        return solve_max_flow_edge(
            topology, traffic, backend=backend, session=lp_session
        )

    return run


def _mlu_factory(
    backend: Optional[LPBackend] = None,
    num_paths: int = 4,
    warm: bool = False,
    session=None,
) -> SolveFn:
    from repro.te.mlu import solve_min_mlu

    lp_session = _warm_session(backend, warm, session)

    def run(topology: Topology, traffic: TrafficMatrix) -> TESolution:
        return solve_min_mlu(
            topology, traffic, num_paths=num_paths, backend=backend,
            session=lp_session,
        )

    return run


def _fleischer_factory(
    backend: Optional[LPBackend] = None,
    epsilon: float = 0.1,
    max_rounds: Optional[int] = None,
) -> SolveFn:
    # Combinatorial FPTAS: no LP, so an injected backend is ignored
    # (capabilities advertise uses_lp=False).
    from repro.te.fleischer import solve_fleischer

    def run(topology: Topology, traffic: TrafficMatrix) -> TESolution:
        return solve_fleischer(topology, traffic, epsilon=epsilon, max_rounds=max_rounds)

    return run


def _ncflow_factory(
    backend: Optional[LPBackend] = None, warm: bool = False, **options
) -> SolveFn:
    from repro.te.ncflow import NCFlowSolver

    return NCFlowSolver(backend=backend, warm_start=warm, **options).solve


def _arrow_factory(variant: str):
    def factory(
        backend: Optional[LPBackend] = None, scenarios=None, **options
    ) -> SolveFn:
        from repro.te.arrow import ArrowSolver

        solver = ArrowSolver(variant=variant, backend=backend, **options)

        def run(topology: Topology, traffic: TrafficMatrix) -> TESolution:
            return solver.solve(topology, traffic, scenarios)

        return run

    return factory


register(SolverSpec(
    "pf4", _pf_factory,
    SolverCapabilities(objective="max-flow", supports_warm_start=True),
    "PF-k path-formulation max-flow LP (k=4, the NCFlow baseline)",
))
register(SolverSpec(
    "edge", _edge_factory,
    SolverCapabilities(
        objective="max-flow", uses_tunnels=False, exact=True,
        supports_warm_start=True,
    ),
    "edge-formulation max flow: the exact optimum / feasibility oracle",
))
register(SolverSpec(
    "mlu", _mlu_factory,
    SolverCapabilities(objective="min-mlu", supports_warm_start=True),
    "route all demand, minimise max link utilisation",
))
register(SolverSpec(
    "fleischer", _fleischer_factory,
    SolverCapabilities(
        objective="max-flow", uses_lp=False, uses_tunnels=False,
        approximate=True,
    ),
    "Fleischer's (1-eps)-approximate max multicommodity flow (no LP)",
))
register(SolverSpec(
    "ncflow", _ncflow_factory,
    SolverCapabilities(
        objective="max-flow", supports_warm_start=True, approximate=True,
        warm_start_exact=False,
    ),
    "contract-and-decompose solver with partition search + residual passes",
))
for _variant, _blurb in (
    ("paper", "designated restorable links, fixed restored capacity"),
    ("code", "restoration as budgeted decision variables (open-source variant)"),
    ("none", "no restoration: tunnels crossing a cut fiber are dead"),
    ("ticket", "LP-relaxed lottery-ticket restoration candidates"),
):
    register(SolverSpec(
        f"arrow-{_variant}", _arrow_factory(_variant),
        SolverCapabilities(objective="max-flow", failure_aware=True),
        f"restoration-aware TE under fiber cuts; {_blurb}",
    ))
