"""Common result type for TE solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass
class TESolution:
    """Outcome of one TE solve.

    ``flow_per_commodity`` maps ``(src, dst)`` to the end-to-end flow the
    solver admits for that commodity, in the same Mbps units as the
    traffic matrix.  ``objective`` is the total admitted flow.
    """

    solver: str
    objective: float
    flow_per_commodity: Dict[Tuple[str, str], float] = field(default_factory=dict)
    solve_seconds: float = 0.0
    lp_count: int = 0
    status: str = "optimal"

    @property
    def ok(self) -> bool:
        return self.status == "optimal"

    def satisfied_fraction(self, total_demand: float) -> float:
        """Fraction of offered demand admitted (0 when demand is 0)."""
        if total_demand <= 0:
            return 0.0
        return self.objective / total_demand

    def relative_gap(self, reference: "TESolution") -> float:
        """``(reference - self) / reference``; positive means worse."""
        if reference.objective == 0:
            return 0.0
        return (reference.objective - self.objective) / reference.objective
