"""Process-wide tunnel cache shared by every path-formulation solver.

Computing k-shortest tunnels (Yen's algorithm per commodity) dominates
model-build time on large instances, and workloads like
``max_feasible_scale``'s binary search or a ``scale_sweep`` call the
solvers many times on the *same* topology with the *same* commodity
pairs -- only the demand volumes change.  Tunnel selection is hop-count
shortest paths, so it depends only on (a) the topology's structure and
(b) which commodities have nonzero demand and (c) ``k``; it is
independent of capacities and demand volumes.  The cache keys on exactly
that triple.

The cache is safe for concurrent workers (a single lock guards the
LRU table) and instrumented: ``tunnel_cache.hit`` / ``tunnel_cache.miss``
counters in :mod:`repro.obs.metrics` (labeled ``k=<k>``; the unlabeled
family series carries the totals), plus the existing ``te.tunnels``
span around each real computation.

An optional second tier persists across processes: attach an
:class:`repro.store.ArtifactStore` (:meth:`TunnelCache.attach_store`,
or the CLI's ``--store DIR`` flag) and every in-memory miss consults
the disk store before paying for Yen's algorithm -- a second process
over the same topology set starts warm (``store.hit`` in the metrics
proves it).  Store entries are integrity-verified on read; a corrupt
entry is counted, discarded, and recomputed, never returned.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix
from repro.te.paths import k_shortest_tunnels

TunnelMap = Dict[Tuple[str, str], List[List[str]]]

CacheKey = Tuple[str, Tuple[Tuple[str, str], ...], int]


def topology_fingerprint(topology: Topology) -> str:
    """Digest of the topology's *structure* (nodes and directed links).

    Capacities are deliberately excluded: tunnel selection is hop-count
    shortest paths, so two topologies with the same links but different
    (or residual) capacities share tunnel sets.  That is what lets
    NCFlow's residual re-solve passes hit the cache.
    """
    hasher = hashlib.blake2b(digest_size=16)
    for node in topology.nodes:
        hasher.update(node.encode())
        hasher.update(b"\x00")
    hasher.update(b"\x01")
    for src, dst in sorted(topology.to_networkx().edges):
        hasher.update(src.encode())
        hasher.update(b"\x00")
        hasher.update(dst.encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


def encode_tunnels(tunnels: TunnelMap) -> List[List[object]]:
    """A :data:`TunnelMap` as a JSON-able, deterministically ordered list.

    Tuple keys do not survive JSON, so entries become sorted
    ``[src, dst, paths]`` triples; :func:`decode_tunnels` inverts this.
    """
    return [
        [src, dst, [list(path) for path in paths]]
        for (src, dst), paths in sorted(tunnels.items())
    ]


def decode_tunnels(payload: object) -> TunnelMap:
    """Rebuild a :data:`TunnelMap` stored by :func:`encode_tunnels`.

    Strict about shape: anything that is not a list of
    ``[src, dst, paths]`` triples raises :class:`ValueError`, so a
    stale or foreign store entry triggers a recompute instead of
    sneaking a malformed tunnel map into a solver.
    """
    if not isinstance(payload, list):
        raise ValueError(f"tunnel payload must be a list, got {type(payload)}")
    tunnels: TunnelMap = {}
    for triple in payload:
        if not isinstance(triple, list) or len(triple) != 3:
            raise ValueError(f"expected [src, dst, paths] triple, got {triple!r}")
        src, dst, paths = triple
        if not isinstance(paths, list) or not all(
            isinstance(path, list) for path in paths
        ):
            raise ValueError(f"malformed path list for {src!r}->{dst!r}")
        tunnels[(str(src), str(dst))] = [
            [str(node) for node in path] for path in paths
        ]
    return tunnels


class TunnelCache:
    """Bounded LRU map from (topology, commodities, k) to tunnel sets.

    With a store attached (:meth:`attach_store`), the in-memory table
    becomes the first tier of a two-tier cache: memory miss -> disk
    lookup -> compute, with computed tunnel sets written through to
    disk so the *next process* over the same instances starts warm.
    """

    def __init__(self, max_entries: int = 128, store=None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, TunnelMap]" = OrderedDict()
        self._lock = threading.Lock()
        self._store = store
        self.hits = 0
        self.misses = 0

    def attach_store(self, store) -> None:
        """Use ``store`` (an :class:`repro.store.ArtifactStore`) as the
        persistent second tier; ``None`` detaches it."""
        self._store = store

    @property
    def store(self):
        """The attached persistent store, or ``None``."""
        return self._store

    @staticmethod
    def store_key(key: CacheKey) -> str:
        """The artifact-store key for one in-memory cache key."""
        topo_fp, commodity_keys, k = key
        commodities = hashlib.blake2b(digest_size=16)
        for src, dst in commodity_keys:
            commodities.update(src.encode())
            commodities.update(b"\x00")
            commodities.update(dst.encode())
            commodities.update(b"\x00")
        return f"tunnels/1/{topo_fp}/{k}/{commodities.hexdigest()}"

    def _key(self, topology: Topology, traffic: TrafficMatrix, k: int) -> CacheKey:
        commodity_keys = tuple(
            (src, dst) for src, dst, _ in traffic.commodities()
        )
        return (topology_fingerprint(topology), commodity_keys, k)

    def lookup(self, topology: Topology, traffic: TrafficMatrix, k: int) -> TunnelMap:
        """Cached tunnels for the instance, computing them on first use.

        Returns a fresh dict each call (the path lists are shared), so a
        caller dropping entries from its copy cannot poison the cache.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        from repro.resilience import faults

        injector = faults.active()
        if injector is not None:
            injector.maybe_fail(
                "tunnel_cache.get", prefix=f"{topology.name}|k{k}"
            )
        key = self._key(topology, traffic, k)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if entry is not None:
            obs.metrics.counter("tunnel_cache.hit", k=k).inc()
            return dict(entry)
        obs.metrics.counter("tunnel_cache.miss", k=k).inc()
        tunnels: Optional[TunnelMap] = None
        if self._store is not None:
            payload = self._store.get(self.store_key(key))
            if payload is not None:
                try:
                    tunnels = decode_tunnels(payload)
                except (TypeError, ValueError):
                    tunnels = None  # stale encoding: recompute below
        computed = tunnels is None
        if computed:
            with obs.span("te.tunnels", k=k, commodities=len(traffic.demands)):
                tunnels = k_shortest_tunnels(topology, traffic, k)
        with self._lock:
            self.misses += 1
            self._entries[key] = tunnels
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        if computed and self._store is not None:
            self._store.put(self.store_key(key), encode_tunnels(tunnels))
        return dict(tunnels)

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


#: The process-wide cache every solver routes tunnel selection through.
TUNNEL_CACHE = TunnelCache()


def cached_k_shortest_tunnels(
    topology: Topology, traffic: TrafficMatrix, k: int
) -> TunnelMap:
    """:func:`repro.te.paths.k_shortest_tunnels` through :data:`TUNNEL_CACHE`."""
    return TUNNEL_CACHE.lookup(topology, traffic, k)
