"""Shared fixtures.

Session-scoped fixtures cache the expensive objects (verifiers over the
named datasets, reference TE solutions) so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.netmodel.datasets import build_verification_dataset
from repro.netmodel.instances import make_te_instance


@pytest.fixture(scope="session")
def internet2():
    return build_verification_dataset("Internet2")


@pytest.fixture(scope="session")
def stanford():
    return build_verification_dataset("Stanford")


@pytest.fixture(scope="session")
def internet2_ap(internet2):
    from repro.ap import APVerifier

    return APVerifier(internet2)


@pytest.fixture(scope="session")
def internet2_apkeep(internet2):
    from repro.apkeep import APKeepVerifier

    return APKeepVerifier(internet2)


@pytest.fixture(scope="session")
def uninett_instance():
    return make_te_instance("Uninett2010", max_commodities=120)


@pytest.fixture(scope="session")
def b4_instance():
    return make_te_instance("B4", max_commodities=120)
