"""Tests for the AP verifier: atoms, reachability, property checks."""

import random

import pytest

from repro.ap import APVerifier, compute_atomic_predicates
from repro.ap.predicates import extract_predicates
from repro.bdd.builder import new_engine, prefix_to_bdd
from repro.bdd.engine import BDD_FALSE, BDD_TRUE
from repro.netmodel.datasets import (
    build_verification_dataset,
    inject_blackhole,
    inject_loop,
)
from repro.netmodel.headerspace import HEADER_BITS, Prefix
from repro.netmodel.rules import DROP_PORT, SELF_PORT


class TestAtomicPredicates:
    def test_atoms_partition_the_space(self):
        engine = new_engine("jdd")
        predicates = [
            prefix_to_bdd(engine, Prefix(0x0000, 1)),
            prefix_to_bdd(engine, Prefix(0x0000, 3)),
            prefix_to_bdd(engine, Prefix(0x4000, 2)),
        ]
        atomics = compute_atomic_predicates(engine, predicates)
        total = 0
        for i, a in atomics.atoms.items():
            for j, b in atomics.atoms.items():
                if i < j:
                    assert engine.and_(a, b) == BDD_FALSE
            total += engine.satcount(a)
        assert total == 1 << HEADER_BITS

    def test_predicates_are_unions_of_atoms(self):
        engine = new_engine("jdd")
        predicates = [
            prefix_to_bdd(engine, Prefix(0x0000, 2)),
            prefix_to_bdd(engine, Prefix(0x0000, 4)),
        ]
        atomics = compute_atomic_predicates(engine, predicates)
        for predicate in predicates:
            rebuilt = atomics.union_bdd(atomics.atoms_of(predicate))
            assert rebuilt == predicate

    def test_minimality_two_nested_prefixes(self):
        engine = new_engine("jdd")
        predicates = [
            prefix_to_bdd(engine, Prefix(0x0000, 1)),
            prefix_to_bdd(engine, Prefix(0x0000, 2)),
        ]
        atomics = compute_atomic_predicates(engine, predicates)
        assert atomics.num_atoms == 3

    def test_trivial_predicates_handled(self):
        engine = new_engine("jdd")
        atomics = compute_atomic_predicates(engine, [BDD_TRUE, BDD_FALSE])
        assert atomics.num_atoms == 1
        assert atomics.atoms_of(BDD_TRUE) == frozenset(atomics.atoms)
        assert atomics.atoms_of(BDD_FALSE) == frozenset()

    def test_duplicate_predicates_no_extra_atoms(self):
        engine = new_engine("jdd")
        node = prefix_to_bdd(engine, Prefix(0x8000, 1))
        atomics = compute_atomic_predicates(engine, [node, node, node])
        assert atomics.num_atoms == 2


class TestPredicateExtraction:
    def test_counts(self, internet2):
        engine = new_engine("jdd")
        table = extract_predicates(internet2, engine)
        assert table.num_forwarding > 0
        assert table.num_acl == 0  # Internet2 carries no ACLs
        assert len(table.distinct_predicates()) > 0

    def test_stanford_has_acl_predicates(self, stanford):
        engine = new_engine("jdd")
        table = extract_predicates(stanford, engine)
        assert table.num_acl > 0


class TestReachability:
    def test_bfs_equals_path_enumeration(self, internet2_ap, internet2):
        nodes = internet2.topology.nodes
        random.seed(4)
        pairs = [(random.choice(nodes), random.choice(nodes)) for _ in range(6)]
        for src, dst in pairs:
            if src == dst:
                continue
            bfs = internet2_ap.reachable_atoms(src, dst)
            enum = internet2_ap.reachable_atoms_by_path_enumeration(src, dst)
            assert bfs.atoms == enum.atoms, f"strategies disagree on {src}->{dst}"

    def test_destination_prefix_reaches(self, internet2_ap, internet2):
        nodes = internet2.topology.nodes
        src, dst = nodes[0], nodes[-1]
        result = internet2_ap.reachable_atoms(src, dst)
        prefix_bdd = prefix_to_bdd(
            internet2_ap.engine, internet2.prefix_of[dst]
        )
        reachable_bdd = internet2_ap.atomics.union_bdd(result.atoms)
        # Every header destined to dst must be able to reach dst.
        assert internet2_ap.engine.implies(prefix_bdd, reachable_bdd)

    def test_self_reachability(self, internet2_ap, internet2):
        node = internet2.topology.nodes[0]
        result = internet2_ap.reachable_atoms(node, node)
        assert result.atoms == internet2_ap.acl_atoms[node]

    def test_unknown_device_rejected(self, internet2_ap):
        with pytest.raises(KeyError):
            internet2_ap.reachable_atoms("nowhere", "Internet2-n0")

    def test_brute_force_agreement(self, internet2_ap, internet2):
        """Atom-level answers must match per-address forwarding walks."""
        nodes = internet2.topology.nodes
        src, dst = nodes[1], nodes[6]
        result = internet2_ap.reachable_atoms(src, dst)
        random.seed(11)
        for _ in range(200):
            address = random.randrange(1 << HEADER_BITS)
            device, arrived, visited = src, False, set()
            if internet2.devices[device].acl_permits(address):
                while True:
                    if device == dst:
                        arrived = True
                        break
                    if device in visited:
                        break
                    visited.add(device)
                    port = internet2.devices[device].lookup(address)
                    if port in (DROP_PORT, SELF_PORT):
                        break
                    if not internet2.devices[port].acl_permits(address):
                        break
                    device = port
            assignment = {
                i: bool((address >> (HEADER_BITS - 1 - i)) & 1)
                for i in range(HEADER_BITS)
            }
            in_result = any(
                internet2_ap.engine.evaluate(
                    internet2_ap.atomics.atoms[a], assignment
                )
                for a in result.atoms
            )
            assert arrived == in_result, f"address {address:#x} disagrees"

    def test_max_paths_caps_enumeration(self, internet2_ap, internet2):
        nodes = internet2.topology.nodes
        result = internet2_ap.reachable_atoms_by_path_enumeration(
            nodes[0], nodes[-1], max_paths=3
        )
        assert result.paths_explored <= 3

    def test_verify_all_pairs(self, internet2_ap, internet2):
        results = internet2_ap.verify_all_pairs()
        n = internet2.topology.num_nodes
        assert len(results) == n * (n - 1)

    def test_verify_all_pairs_unknown_strategy(self, internet2_ap):
        with pytest.raises(KeyError):
            internet2_ap.verify_all_pairs(strategy="magic")


class TestPropertyChecks:
    def test_clean_dataset_loop_free(self, internet2_ap):
        assert internet2_ap.find_loops() == []

    def test_clean_dataset_blackhole_free_in_allocated_space(self, internet2_ap):
        scope = internet2_ap.allocated_atoms()
        assert internet2_ap.find_blackholes(scope=scope) == []

    def test_unallocated_space_drops(self, internet2_ap):
        # Unscoped, the default-drop of unallocated space is visible.
        assert internet2_ap.find_blackholes()

    def test_injected_loop_found(self, internet2):
        perturbed, _ = inject_loop(internet2, seed=3)
        verifier = APVerifier(perturbed)
        loops = verifier.find_loops()
        assert loops
        for report in loops:
            assert len(report.cycle) >= 2

    def test_injected_blackhole_found(self, internet2):
        perturbed, device = inject_blackhole(internet2, seed=3)
        verifier = APVerifier(perturbed)
        scope = verifier.allocated_atoms()
        reports = verifier.find_blackholes(scope=scope)
        assert any(report.device == device for report in reports)

    def test_loop_cycle_is_canonical(self, internet2):
        perturbed, _ = inject_loop(internet2, seed=5)
        verifier = APVerifier(perturbed)
        for report in verifier.find_loops():
            assert report.cycle[0] == min(report.cycle)


class TestAllDatasets:
    @pytest.mark.parametrize("name", ["Internet2", "Stanford", "Purdue", "Airtel"])
    def test_verifier_builds_and_is_clean(self, name):
        dataset = build_verification_dataset(name)
        verifier = APVerifier(dataset)
        assert verifier.num_atoms > 1
        assert verifier.find_loops() == []
        assert verifier.find_blackholes(scope=verifier.allocated_atoms()) == []
