"""Tests for APKeep: Algorithm 1, the PPM, and cross-validation vs AP."""

import pytest

from repro.apkeep import APKeepVerifier, Change, ForwardingElement, PPM
from repro.apkeep.element import ACL_PERMIT, AclElement
from repro.ap import APVerifier
from repro.bdd.builder import new_engine
from repro.bdd.engine import BDD_FALSE, BDD_TRUE
from repro.netmodel.datasets import (
    build_verification_dataset,
    inject_blackhole,
    inject_loop,
)
from repro.netmodel.headerspace import HEADER_BITS, Prefix
from repro.netmodel.rules import AclAction, AclRule, DROP_PORT, ForwardingRule


def lpm(value, length, port):
    return ForwardingRule.lpm(Prefix(value, length), port)


class TestChange:
    def test_same_port_rejected(self):
        with pytest.raises(ValueError):
            Change(BDD_TRUE, "a", "a")


class TestForwardingElement:
    def test_first_insert_moves_from_default(self):
        engine = new_engine("jdd")
        element = ForwardingElement("r", engine)
        changes = element.insert(lpm(0x0000, 1, "a"))
        assert len(changes) == 1
        assert changes[0].from_port == DROP_PORT
        assert changes[0].to_port == "a"
        assert engine.satcount(changes[0].bdd) == 1 << (HEADER_BITS - 1)

    def test_shadowed_insert_changes_nothing(self):
        engine = new_engine("jdd")
        element = ForwardingElement("r", engine)
        element.insert(lpm(0x0000, 1, "a"))
        # Lower priority, fully covered, same port region split:
        changes = element.insert(ForwardingRule(Prefix(0x0000, 2), "a", 0))
        assert changes == []

    def test_hits_partition_after_many_inserts(self):
        engine = new_engine("jdd")
        element = ForwardingElement("r", engine)
        element.insert(lpm(0x0000, 1, "a"))
        element.insert(lpm(0x0000, 2, "b"))
        element.insert(lpm(0x0000, 3, "a"))
        element.insert(lpm(0x8000, 1, "c"))
        assert element.check_partition()

    def test_priority_tie_earlier_wins(self):
        engine = new_engine("jdd")
        element = ForwardingElement("r", engine)
        element.insert(ForwardingRule(Prefix(0x0000, 4), "first", 9))
        changes = element.insert(ForwardingRule(Prefix(0x0000, 4), "second", 9))
        assert changes == []  # fully shadowed by the earlier equal-priority rule

    def test_hit_of_aggregates_rules(self):
        engine = new_engine("jdd")
        element = ForwardingElement("r", engine)
        element.insert(lpm(0x0000, 2, "a"))
        element.insert(lpm(0x4000, 2, "a"))
        hit = element.hit_of("a")
        assert engine.satcount(hit) == 2 * (1 << (HEADER_BITS - 2))

    def test_remove_restores_previous_behaviour(self):
        engine = new_engine("jdd")
        element = ForwardingElement("r", engine)
        element.insert(lpm(0x0000, 1, "a"))
        high = lpm(0x0000, 4, "b")
        element.insert(high)
        changes = element.remove(high)
        assert element.check_partition()
        # The /4 region returns to port a.
        assert any(
            c.from_port == "b" and c.to_port == "a" for c in changes
        )

    def test_remove_unknown_rule_raises(self):
        engine = new_engine("jdd")
        element = ForwardingElement("r", engine)
        with pytest.raises(KeyError):
            element.remove(lpm(0x0000, 1, "a"))

    def test_remove_falls_back_to_default(self):
        engine = new_engine("jdd")
        element = ForwardingElement("r", engine)
        rule = lpm(0x0000, 1, "a")
        element.insert(rule)
        changes = element.remove(rule)
        assert any(c.to_port == DROP_PORT for c in changes)
        assert element.default_hit == BDD_TRUE


class TestAclElement:
    def test_permit_bdd_matches_device_semantics(self):
        engine = new_engine("jdd")
        acl = AclElement("acl:r", engine)
        acl.insert(AclRule(Prefix(0x8000, 1), AclAction.DENY, 5))
        acl.insert(AclRule(Prefix(0xC000, 2), AclAction.PERMIT, 9))
        from repro.netmodel.rules import Device

        device = Device("r")
        device.add_acl_rule(AclRule(Prefix(0x8000, 1), AclAction.DENY, 5))
        device.add_acl_rule(AclRule(Prefix(0xC000, 2), AclAction.PERMIT, 9))
        assert engine.satcount(acl.permit_bdd()) == len(
            device.acl_permit_space()
        )
        assert acl.check_partition()


class TestPPM:
    def test_initial_state(self):
        engine = new_engine("jdd")
        ppm = PPM(engine)
        assert ppm.num_atoms == 1
        ppm.add_element("r1", [DROP_PORT], DROP_PORT)
        assert ppm.atoms_of("r1", DROP_PORT) == frozenset({0})
        assert ppm.check_partition("r1")

    def test_duplicate_element_rejected(self):
        ppm = PPM(new_engine("jdd"))
        ppm.add_element("r1", [], DROP_PORT)
        with pytest.raises(KeyError):
            ppm.add_element("r1", [], DROP_PORT)

    def test_split_keeps_every_element_partitioned(self):
        engine = new_engine("jdd")
        ppm = PPM(engine)
        ppm.add_element("r1", [DROP_PORT], DROP_PORT)
        ppm.add_element("r2", [DROP_PORT], DROP_PORT)
        from repro.bdd.builder import prefix_to_bdd

        half = prefix_to_bdd(engine, Prefix(0x0000, 1))
        ppm.apply_changes("r1", [Change(half, DROP_PORT, "a")])
        assert ppm.num_atoms == 2
        assert ppm.check_partition("r1")
        assert ppm.check_partition("r2")
        assert len(ppm.atoms_of("r1", "a")) == 1

    def test_compaction_merges_equivalent_atoms(self):
        engine = new_engine("jdd")
        ppm = PPM(engine)
        ppm.add_element("r1", [DROP_PORT], DROP_PORT)
        from repro.bdd.builder import prefix_to_bdd

        quarter_a = prefix_to_bdd(engine, Prefix(0x0000, 2))
        quarter_b = prefix_to_bdd(engine, Prefix(0x4000, 2))
        ppm.apply_changes("r1", [Change(quarter_a, DROP_PORT, "a")])
        ppm.apply_changes("r1", [Change(quarter_b, DROP_PORT, "a")])
        # Two atoms on port a with identical profiles -> merge to one.
        assert ppm.num_atoms == 3
        assert ppm.count_compacted() == 2
        merged = ppm.compact()
        assert merged == 1
        assert ppm.num_atoms == 2
        assert ppm.check_partition("r1")


class TestVerifier:
    @pytest.mark.parametrize("name", ["Internet2", "Stanford", "Purdue", "Airtel"])
    def test_atom_count_matches_ap(self, name):
        dataset = build_verification_dataset(name)
        engine = new_engine("jdd")
        ap = APVerifier(dataset, engine=engine)
        apkeep = APKeepVerifier(dataset, engine=engine)
        assert apkeep.num_atoms_minimal == ap.num_atoms

    def test_reachability_matches_ap(self, internet2):
        engine = new_engine("jdd")
        ap = APVerifier(internet2, engine=engine)
        apkeep = APKeepVerifier(internet2, engine=engine)
        nodes = internet2.topology.nodes
        for src in nodes[:3]:
            for dst in nodes[-3:]:
                if src == dst:
                    continue
                want = ap.atomics.union_bdd(ap.reachable_atoms(src, dst).atoms)
                got = BDD_FALSE
                for atom in apkeep.reachable_atoms(src, dst):
                    got = engine.or_(got, apkeep.ppm.atoms[atom])
                assert got == want, f"{src}->{dst} differs"

    def test_invariants_hold_during_construction(self, internet2):
        verifier = APKeepVerifier(internet2, check_invariants=True)
        assert verifier.num_atoms >= 1

    def test_loops_found_incrementally(self, internet2, internet2_apkeep):
        assert internet2_apkeep.find_loops() == []
        perturbed, _ = inject_loop(internet2, seed=3)
        verifier = APKeepVerifier(perturbed)
        assert verifier.find_loops()

    def test_blackhole_found(self, internet2):
        perturbed, device = inject_blackhole(internet2, seed=3)
        verifier = APKeepVerifier(perturbed)
        scope = verifier.allocated_atoms()
        assert any(name == device for name, _ in verifier.find_blackholes(scope))

    def test_incremental_insert_then_remove_is_identity(self, internet2):
        verifier = APKeepVerifier(internet2)
        node = internet2.topology.nodes[0]
        neighbor = internet2.topology.successors(node)[0]
        rule = ForwardingRule(Prefix(0xF000, 4), neighbor, priority=99)
        verifier.insert_rule(node, rule)
        verifier.remove_rule(node, rule)
        verifier.compact()
        engine = verifier.engine
        after = verifier.port_atoms()

        # Atoms may have been split and renumbered along the way, so
        # compare per-port header counts against a fresh build.
        def port_satcount(port_atoms_map, atoms_bdds):
            return {
                key: sum(engine.satcount(atoms_bdds[a]) for a in atoms)
                for key, atoms in port_atoms_map.items()
            }

        reference = APKeepVerifier(internet2, engine=engine)
        want_counts = port_satcount(reference.port_atoms(), reference.ppm.atoms)
        got_counts = port_satcount(after, verifier.ppm.atoms)
        for key, want in want_counts.items():
            assert got_counts.get(key, 0) == want

    def test_update_records_kept(self, internet2_apkeep):
        assert internet2_apkeep.updates
        record = internet2_apkeep.updates[0]
        assert record.operation == "insert"
        assert record.seconds >= 0.0
