"""Tests for the extra functionality shipped inside the generated
(reproduced) prototypes — the code participants kept around their cores.

The reproduced modules are real code; their reporting/deletion/query
helpers must agree with the reference implementations too.
"""

import io

import pytest

from repro.core.assembly import assemble_module
from repro.core.knowledge import get_knowledge, get_paper_spec
from repro.core.llm import CodeArtifact


def build(key):
    knowledge = get_knowledge(key)
    artifacts = [
        CodeArtifact(c.name, "python", knowledge.components[c.name].final_source, 9)
        for c in get_paper_spec(key).components
    ]
    return assemble_module(artifacts, f"artifact_ext_{key}")


@pytest.fixture(scope="module")
def ap_module():
    return build("ap")


@pytest.fixture(scope="module")
def apkeep_module():
    return build("apkeep")


@pytest.fixture(scope="module")
def arrow_module():
    return build("arrow")


class TestApArtifactExtras:
    def test_find_loops_clean_and_injected(self, ap_module, internet2):
        from repro.netmodel.datasets import inject_loop

        state = ap_module.build_verifier(internet2)
        assert ap_module.find_loops(state) == []
        looped, _ = inject_loop(internet2, seed=3)
        state2 = ap_module.build_verifier(looped)
        assert ap_module.find_loops(state2)

    def test_verify_all_pairs_shape(self, ap_module, internet2):
        state = ap_module.build_verifier(internet2)
        results = ap_module.verify_all_pairs(state, max_paths=20)
        n = internet2.topology.num_nodes
        assert len(results) == n * (n - 1)

    def test_verification_summary(self, ap_module, internet2):
        state = ap_module.build_verifier(internet2)
        summary = ap_module.verification_summary(state)
        assert summary["loop_free"] is True
        assert summary["atoms"] == ap_module.count_atoms(state)

    def test_predicate_stats(self, ap_module, internet2):
        state = ap_module.build_verifier(internet2)
        stats = ap_module.predicate_stats(state)
        assert stats["devices"] == internet2.topology.num_nodes
        assert stats["bdd_nodes"] > 0
        assert stats["bdd_operations"] > 0

    def test_print_report(self, ap_module, internet2):
        state = ap_module.build_verifier(internet2)
        stream = io.StringIO()
        ap_module.print_report(state, stream=stream)
        text = stream.getvalue()
        assert "AP verification report" in text
        assert "atomic predicates:" in text

    def test_loops_match_reference(self, ap_module, internet2):
        from repro.ap import APVerifier
        from repro.netmodel.datasets import inject_loop

        looped, _ = inject_loop(internet2, seed=5)
        state = ap_module.build_verifier(looped)
        reference = APVerifier(looped)
        assert bool(ap_module.find_loops(state)) == bool(reference.find_loops())


class TestApkeepArtifactExtras:
    def test_update_rule_insert_remove(self, apkeep_module, internet2):
        from repro.netmodel.headerspace import Prefix
        from repro.netmodel.rules import ForwardingRule

        state = apkeep_module.build_network(internet2)
        before = apkeep_module.count_atoms(state)
        node = internet2.topology.nodes[0]
        neighbor = internet2.topology.successors(node)[0]
        rule = ForwardingRule(Prefix(0xF000, 4), neighbor, priority=77)
        apkeep_module.update_rule(state, node, rule, "insert")
        apkeep_module.update_rule(state, node, rule, "remove")
        apkeep_module.merge_equivalent_atoms(state)
        assert apkeep_module.count_atoms(state) == before
        with pytest.raises(ValueError):
            apkeep_module.update_rule(state, node, rule, "upsert")

    def test_reachable_matches_reference(self, apkeep_module, internet2):
        from repro.apkeep import APKeepVerifier

        state = apkeep_module.build_network(internet2)
        reference = APKeepVerifier(internet2)
        nodes = internet2.topology.nodes
        for src, dst in [(nodes[0], nodes[-1]), (nodes[2], nodes[4])]:
            got = apkeep_module.reachable(state, src, dst)
            want = reference.reachable_atoms(src, dst)
            # Engines differ; compare via header counts.
            got_headers = sum(
                state["engine"].satcount(state["ppm"]["atoms"][a]) for a in got
            )
            want_headers = sum(
                reference.engine.satcount(reference.ppm.atoms[a]) for a in want
            )
            assert got_headers == want_headers

    def test_merge_equivalent_atoms_counts(self, apkeep_module, internet2):
        state = apkeep_module.build_network(internet2)
        merged = apkeep_module.merge_equivalent_atoms(state)
        assert merged >= 0
        # After merging, raw count equals the minimal count.
        raw = len(state["ppm"]["atoms"])
        assert raw == apkeep_module.count_atoms(state)

    def test_find_blackholes_present(self, apkeep_module, internet2):
        state = apkeep_module.build_network(internet2)
        # Unscoped: the unallocated default-drop space is visible.
        assert apkeep_module.find_blackholes(state)


class TestArrowArtifactExtras:
    @pytest.fixture(scope="class")
    def instance(self):
        from repro.netmodel.instances import make_te_instance

        return make_te_instance("B4", max_commodities=60)

    def test_detailed_solve_matches_plain(self, arrow_module, instance):
        plain = arrow_module.solve_arrow(instance.topology, instance.traffic)
        detailed = arrow_module.solve_arrow_detailed(
            instance.topology, instance.traffic
        )
        assert detailed["objective"] == pytest.approx(plain, rel=1e-6)
        assert 0.0 < detailed["satisfied_fraction"] <= 1.0
        total = sum(detailed["admitted"].values())
        assert total == pytest.approx(detailed["objective"], rel=1e-6)

    def test_tunnel_stats(self, arrow_module, instance):
        tunnels = arrow_module.build_tunnels(instance.topology, instance.traffic)
        stats = arrow_module.tunnel_stats(tunnels)
        assert stats["tunnels"] > 0
        assert stats["min_hops"] >= 1
        assert stats["min_hops"] <= stats["mean_hops"] <= stats["max_hops"]

    def test_restoration_summary(self, arrow_module, instance):
        summary = arrow_module.restoration_summary(instance.topology)
        assert set(summary) == set(instance.topology.fibers())
        for entry in summary.values():
            assert 0 < entry["designated"] <= entry["links"]
            assert entry["restorable_capacity"] <= entry["capacity"]

    def test_max_link_utilization(self, arrow_module, instance):
        tunnels = arrow_module.build_tunnels(instance.topology, instance.traffic)
        detailed = arrow_module.solve_arrow_detailed(
            instance.topology, instance.traffic
        )
        mlu = arrow_module.max_link_utilization(
            instance.topology, detailed["tunnel_flows"], tunnels, scenario_id=0
        )
        assert 0.0 <= mlu <= 1.0 + 1e-6


class TestCliLint:
    def test_lint_flag(self):
        from repro.cli import main

        out = io.StringIO()
        code = main(["paperdoc", "ap", "--lint"], out=out)
        assert code == 0
        assert "no pseudocode" in out.getvalue()
