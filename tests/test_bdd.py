"""Tests for the BDD engines, including cross-engine agreement."""

import pytest

from repro.bdd import (
    BDD_FALSE,
    BDD_TRUE,
    JDDEngine,
    JavaBDDEngine,
    prefix_to_bdd,
)
from repro.bdd.builder import acl_permit_bdd, forwarding_port_bdds, new_engine
from repro.netmodel.headerspace import HEADER_BITS, HeaderSpace, Prefix
from repro.netmodel.rules import (
    AclAction,
    AclRule,
    Device,
    DROP_PORT,
    ForwardingRule,
)

ENGINES = [JDDEngine, JavaBDDEngine]


@pytest.fixture(params=ENGINES, ids=lambda cls: cls.name)
def engine(request):
    return request.param(HEADER_BITS)


class TestBasics:
    def test_terminals(self, engine):
        assert engine.satcount(BDD_FALSE) == 0
        assert engine.satcount(BDD_TRUE) == 1 << HEADER_BITS

    def test_var_and_nvar(self, engine):
        x = engine.var(0)
        nx = engine.nvar(0)
        assert engine.satcount(x) == 1 << (HEADER_BITS - 1)
        assert engine.or_(x, nx) == BDD_TRUE
        assert engine.and_(x, nx) == BDD_FALSE

    def test_var_bounds_checked(self, engine):
        with pytest.raises(IndexError):
            engine.var(HEADER_BITS)
        with pytest.raises(IndexError):
            engine.nvar(-1)

    def test_not_involution(self, engine):
        x = engine.var(3)
        assert engine.not_(engine.not_(x)) == x

    def test_canonical_ids(self, engine):
        a = engine.and_(engine.var(0), engine.var(1))
        b = engine.and_(engine.var(1), engine.var(0))
        assert a == b, "commutative ops must produce the same node"

    def test_diff_semantics(self, engine):
        a = engine.var(0)
        b = engine.var(1)
        diff = engine.diff(a, b)
        # a AND NOT b: a half minus the quarter where both hold.
        assert engine.satcount(diff) == (1 << (HEADER_BITS - 1)) - (
            1 << (HEADER_BITS - 2)
        )

    def test_xor(self, engine):
        a = engine.var(0)
        b = engine.var(1)
        x = engine.xor_(a, b)
        assert engine.satcount(x) == 1 << (HEADER_BITS - 1)

    def test_ite(self, engine):
        f = engine.var(0)
        g = engine.var(1)
        h = engine.var(2)
        node = engine.ite(f, g, h)
        # Brute-force check on a few assignments.
        for bits in range(8):
            assignment = {i: bool((bits >> i) & 1) for i in range(HEADER_BITS)}
            expected = (
                assignment[1] if assignment[0] else assignment[2]
            )
            assert engine.evaluate(node, assignment) == expected

    def test_implies(self, engine):
        narrow = prefix_to_bdd(engine, Prefix(0x1200, 8))
        wide = prefix_to_bdd(engine, Prefix(0x1000, 4))
        assert engine.implies(narrow, wide)
        assert not engine.implies(wide, narrow)

    def test_cube_empty_is_true(self, engine):
        assert engine.cube([]) == BDD_TRUE

    def test_any_sat(self, engine):
        prefix = Prefix(0xA000, 4)
        node = prefix_to_bdd(engine, prefix)
        assignment = engine.any_sat(node)
        address = 0
        for bit, value in assignment.items():
            if value:
                address |= 1 << (HEADER_BITS - 1 - bit)
        assert prefix.contains_address(address)
        assert engine.any_sat(BDD_FALSE) is None

    def test_ref_counting(self, engine):
        x = engine.var(0)
        engine.ref(x)
        engine.ref(x)
        assert engine.live_refs == 2
        engine.deref(x)
        assert engine.live_refs == 1
        engine.deref(x)
        engine.deref(x)  # over-deref must be harmless
        assert engine.live_refs == 0

    def test_num_vars_validated(self):
        with pytest.raises(ValueError):
            JDDEngine(0)


class TestAgainstHeaderSpace:
    """The BDD engines must agree with the brute-force reference."""

    PREFIXES = [
        Prefix(0x0000, 1),
        Prefix(0x0000, 3),
        Prefix(0x4000, 2),
        Prefix(0x1200, 8),
        Prefix.full(),
    ]

    def test_prefix_satcount(self, engine):
        for prefix in self.PREFIXES:
            node = prefix_to_bdd(engine, prefix)
            assert engine.satcount(node) == len(
                HeaderSpace.from_prefix(prefix)
            )

    def test_pairwise_operations(self, engine):
        for a in self.PREFIXES:
            for b in self.PREFIXES:
                bdd_a = prefix_to_bdd(engine, a)
                bdd_b = prefix_to_bdd(engine, b)
                hs_a = HeaderSpace.from_prefix(a)
                hs_b = HeaderSpace.from_prefix(b)
                assert engine.satcount(engine.and_(bdd_a, bdd_b)) == len(
                    hs_a.intersect(hs_b)
                )
                assert engine.satcount(engine.or_(bdd_a, bdd_b)) == len(
                    hs_a.union(hs_b)
                )
                assert engine.satcount(engine.diff(bdd_a, bdd_b)) == len(
                    hs_a.minus(hs_b)
                )


class TestEnginesAgree:
    def test_same_semantics_both_profiles(self):
        jdd = JDDEngine(HEADER_BITS)
        javabdd = JavaBDDEngine(HEADER_BITS)
        prefixes = [Prefix(0x0000, 2), Prefix(0x2000, 4), Prefix(0x2200, 8)]
        for engine in (jdd, javabdd):
            nodes = [prefix_to_bdd(engine, p) for p in prefixes]
            union = BDD_FALSE
            for node in nodes:
                union = engine.or_(union, node)
            engine.last_union_count = engine.satcount(union)
        assert jdd.last_union_count == javabdd.last_union_count

    def test_javabdd_sweeps(self):
        engine = JavaBDDEngine(HEADER_BITS)
        for value in range(0, 1 << HEADER_BITS, 17):
            prefix = Prefix(value & Prefix(0, 8).mask, 8)
            prefix_to_bdd(engine, prefix)
        assert engine.gc_sweeps >= 0  # bookkeeping exists and never crashes


class TestBuilders:
    def test_forwarding_port_bdds_partition(self, engine):
        device = Device("r")
        device.add_rule(ForwardingRule.lpm(Prefix(0x0000, 2), "a"))
        device.add_rule(ForwardingRule.lpm(Prefix(0x0000, 4), "b"))
        ports = forwarding_port_bdds(engine, device)
        total = sum(engine.satcount(bdd) for bdd in ports.values())
        assert total == 1 << HEADER_BITS
        assert DROP_PORT in ports

    def test_forwarding_matches_reference_spaces(self, engine):
        device = Device("r")
        device.add_rule(ForwardingRule.lpm(Prefix(0x0000, 1), "a"))
        device.add_rule(ForwardingRule.lpm(Prefix(0x4000, 3), "b"))
        ports = forwarding_port_bdds(engine, device)
        for port, bdd in ports.items():
            assert engine.satcount(bdd) == len(device.forwarding_space(port))

    def test_acl_permit_bdd_matches_reference(self, engine):
        device = Device("r")
        device.add_acl_rule(AclRule(Prefix(0x8000, 1), AclAction.DENY, 5))
        device.add_acl_rule(AclRule(Prefix(0xC000, 2), AclAction.PERMIT, 9))
        node = acl_permit_bdd(engine, device)
        assert engine.satcount(node) == len(device.acl_permit_space())

    def test_acl_default_permit(self, engine):
        device = Device("r")
        assert acl_permit_bdd(engine, device) == BDD_TRUE

    def test_new_engine_profiles(self):
        assert isinstance(new_engine("jdd"), JDDEngine)
        assert isinstance(new_engine("javabdd"), JavaBDDEngine)
        with pytest.raises(KeyError):
            new_engine("buddy")


class TestStats:
    def _exercise(self, engine):
        acc = BDD_FALSE
        for value in range(0, 256, 4):
            node = prefix_to_bdd(engine, Prefix((value << 8) & 0xFF00, 8))
            acc = engine.or_(acc, node)
            acc = engine.diff(acc, engine.and_(node, engine.var(0)))
        return acc

    def test_stats_keys_and_consistency(self, engine):
        self._exercise(engine)
        stats = engine.stats()
        for key in (
            "profile", "num_vars", "num_nodes", "cache_size",
            "cache_hits", "cache_misses", "cache_hit_ratio",
            "op_count", "mk_count", "live_refs",
        ):
            assert key in stats
        assert stats["profile"] == engine.name
        assert stats["cache_hits"] >= 0
        assert stats["cache_misses"] > 0
        lookups = stats["cache_hits"] + stats["cache_misses"]
        assert stats["cache_hit_ratio"] == pytest.approx(
            stats["cache_hits"] / lookups
        )

    def test_fresh_engine_has_no_lookups(self, engine):
        stats = engine.stats()
        assert stats["cache_hits"] == 0
        assert stats["cache_misses"] == 0
        assert stats["cache_hit_ratio"] == 0.0

    def test_slow_profile_has_lower_hit_ratio(self):
        jdd = JDDEngine(HEADER_BITS)
        javabdd = JavaBDDEngine(HEADER_BITS)
        self._exercise(jdd)
        self._exercise(javabdd)
        fast = jdd.stats()["cache_hit_ratio"]
        slow = javabdd.stats()["cache_hit_ratio"]
        assert slow < fast, (
            "dropping the computed table per call must collapse the "
            f"hit ratio (jdd={fast:.3f}, javabdd={slow:.3f})"
        )

    def test_javabdd_stats_report_gc_sweeps(self):
        engine = JavaBDDEngine(HEADER_BITS)
        self._exercise(engine)
        stats = engine.stats()
        assert stats["gc_sweeps"] == engine.gc_sweeps
