"""The benchmark harness: registry, runner, artifacts, comparator, CLI."""

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import bench
from repro.bench import (
    ArtifactError,
    BenchmarkSpec,
    BenchResult,
    Thresholds,
    UnknownBenchmarkError,
    build_artifact,
    compare_artifacts,
    default_artifact_path,
    find_latest_artifact,
    git_sha,
    read_artifact,
    run_benchmark,
    validate_artifact,
    write_artifact,
)
from repro.bench.registry import LAYERS, benchmark, register, unregister

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_spec(name="t.spec", layer="te", func=lambda: None, **kwargs):
    return BenchmarkSpec(name=name, layer=layer, func=func, **kwargs)


class TestRegistry:
    def test_discovery_covers_every_layer_with_ten_plus_workloads(self):
        bench.discover()
        names = bench.benchmark_names()
        assert len(names) >= 10
        layers = {bench.get_spec(name).layer for name in names}
        assert layers == set(LAYERS)

    def test_te_benchmarks_track_the_solver_registry(self):
        from repro.te import registry as te_registry

        bench.discover()
        names = set(bench.benchmark_names())
        for solver in te_registry.solver_names():
            assert any(n.startswith(f"te.{solver}.") for n in names), solver

    def test_unknown_name_suggests_close_matches(self):
        bench.discover()
        with pytest.raises(UnknownBenchmarkError) as info:
            bench.get_spec("bdd.build_aply")
        assert "bdd.build_apply" in info.value.suggestions
        assert "bdd.build_apply" in str(info.value)

    def test_select_filters_by_comma_separated_needles(self):
        bench.discover()
        selected = bench.select("bdd,ap.")
        names = [spec.name for spec in selected]
        assert "bdd.build_apply" in names and "ap.build" in names
        assert all("bdd" in n or "ap." in n for n in names)
        assert bench.select("") == bench.select(None)

    def test_register_rejects_duplicates_unless_replace(self):
        spec = make_spec("t.dup")
        register(spec)
        try:
            with pytest.raises(ValueError):
                register(spec)
            register(make_spec("t.dup", description="new"), replace=True)
            assert bench.get_spec("t.dup").description == "new"
        finally:
            unregister("t.dup")

    def test_spec_validates_layer_and_repeat(self):
        with pytest.raises(ValueError):
            make_spec(layer="nope")
        with pytest.raises(ValueError):
            make_spec(repeat=0)

    def test_decorator_registers_and_returns_function(self):
        @benchmark("t.deco", layer="bdd", description="d")
        def workload():
            return {"x": 1}

        try:
            assert bench.get_spec("t.deco").func is workload
            assert workload() == {"x": 1}
        finally:
            unregister("t.deco")


class TestRunner:
    def test_setup_once_pre_iteration_and_warmup_every_iteration(self):
        calls = {"setup": 0, "pre": 0, "run": 0}
        spec = make_spec(
            func=lambda: calls.__setitem__("run", calls["run"] + 1),
            setup=lambda: calls.__setitem__("setup", calls["setup"] + 1),
            pre_iteration=lambda: calls.__setitem__("pre", calls["pre"] + 1),
        )
        result = run_benchmark(spec, repeat=3, warmup=2)
        assert calls == {"setup": 1, "pre": 5, "run": 5}
        assert len(result.seconds) == 3
        assert result.warmup == 2

    def test_dict_return_value_lands_in_meta(self):
        spec = make_spec(func=lambda: {"objective": 42.0, "skip": object()})
        result = run_benchmark(spec, repeat=1, warmup=0)
        assert result.meta["objective"] == 42.0
        assert "skip" not in result.meta  # non-JSON values are dropped

    def test_metrics_capture_only_the_timed_block(self):
        from repro import obs

        def workload():
            obs.metrics.counter("solver.test_counter").inc(2)

        spec = make_spec(
            func=workload,
            setup=lambda: obs.metrics.counter("solver.test_counter").inc(99),
        )
        result = run_benchmark(spec, repeat=3, warmup=1)
        # setup's 99 and the warmup iteration's 2 are both outside the
        # timed block; only the 3 timed iterations count.
        assert result.metrics["solver.test_counter"] == 6

    def test_stats_on_known_seconds(self):
        result = BenchResult(
            name="t", layer="te", seconds=[0.2, 0.1, 0.3],
            metrics={}, meta={}, repeat=3, warmup=0, description="",
        )
        assert result.min_seconds == pytest.approx(0.1)
        assert result.median_seconds == pytest.approx(0.2)
        assert result.mean_seconds == pytest.approx(0.2)
        assert result.stats()["stddev"] == pytest.approx(0.0816496, rel=1e-4)

    def test_workloads_are_deterministic(self):
        bench.discover()
        spec = bench.get_spec("apkeep.update_burst")
        first = run_benchmark(spec, repeat=1, warmup=0)
        second = run_benchmark(spec, repeat=1, warmup=0)
        assert first.meta == second.meta
        assert first.meta  # the workload reports correctness signals


class TestArtifact:
    def run_two(self):
        spec = make_spec("t.art", func=lambda: {"objective": 1.0})
        return [run_benchmark(spec, repeat=2, warmup=0)]

    def test_round_trip(self, tmp_path):
        results = self.run_two()
        path = tmp_path / "bench.json"
        write_artifact(path, results, profile={"name": "test"})
        loaded = read_artifact(path)
        built = build_artifact(results, profile={"name": "test"})
        assert loaded["benchmarks"] == built["benchmarks"]
        assert loaded["profile"] == {"name": "test"}
        entry = loaded["benchmarks"]["t.art"]
        assert entry["layer"] == "te"
        assert len(entry["seconds"]) == 2
        assert entry["meta"]["objective"] == 1.0
        assert loaded["schema"] == "repro.bench/1"

    def test_validation_rejects_malformed_artifacts(self, tmp_path):
        artifact = build_artifact(self.run_two(), profile={"name": "test"})
        for mutate in (
            lambda a: a.__setitem__("schema", "repro.bench/999"),
            lambda a: a.pop("benchmarks"),
            lambda a: a["benchmarks"]["t.art"].pop("seconds"),
            lambda a: a["benchmarks"]["t.art"].__setitem__("seconds", []),
        ):
            broken = json.loads(json.dumps(artifact))
            mutate(broken)
            with pytest.raises(ArtifactError):
                validate_artifact(broken)
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ArtifactError):
            read_artifact(bad)

    def test_git_sha_and_default_path(self, tmp_path):
        sha = git_sha()
        assert sha != "unknown" and len(sha) >= 7
        # Resolvable even when cwd is outside the repository.
        assert git_sha(cwd=str(tmp_path)) == sha
        assert default_artifact_path(str(tmp_path)).name == f"BENCH_{sha}.json"

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        for _ in range(3):
            write_artifact(path, self.run_two())
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_x.json"]
        read_artifact(path)  # validates

    def test_find_latest_artifact_by_created_stamp(self, tmp_path):
        old = tmp_path / "BENCH_old.json"
        new = tmp_path / "BENCH_new.json"
        write_artifact(old, self.run_two())
        write_artifact(new, self.run_two())
        stale = json.loads(old.read_text())
        fresh = json.loads(new.read_text())
        stale["created_unix"] = 1000.0
        fresh["created_unix"] = 2000.0
        old.write_text(json.dumps(stale))
        new.write_text(json.dumps(fresh))
        assert find_latest_artifact(tmp_path) == new
        # The stamp wins over mtime (old was rewritten last above --
        # rewrite new's bytes to make mtime order the *opposite*).
        assert find_latest_artifact(tmp_path).name == "BENCH_new.json"

    def test_find_latest_artifact_ignores_non_bench_files(self, tmp_path):
        (tmp_path / "notes.json").write_text("{}")
        with pytest.raises(ArtifactError, match="save one first"):
            find_latest_artifact(tmp_path)


def artifact_with(stats_by_name):
    benchmarks = {
        name: {
            "layer": "te",
            "seconds": [seconds],
            "stats": {
                "min": seconds, "median": seconds,
                "mean": seconds, "stddev": 0.0,
            },
            "metrics": {},
        }
        for name, seconds in stats_by_name.items()
    }
    return {"schema": "repro.bench/1", "benchmarks": benchmarks}


class TestCompare:
    def test_identical_artifacts_pass(self):
        artifact = artifact_with({"a": 0.1, "b": 0.2})
        report = compare_artifacts(artifact, artifact)
        assert report.ok and not report.regressions and not report.missing
        statuses = {d.name: d.status for d in report.deltas}
        assert statuses == {"a": "ok", "b": "ok"}

    def test_regression_beyond_ratio_fails(self):
        report = compare_artifacts(
            artifact_with({"a": 0.1}), artifact_with({"a": 0.21}),
            Thresholds(ratio=2.0),
        )
        assert not report.ok
        assert [d.name for d in report.regressions] == ["a"]
        assert "REGRESSION" in report.render() and "FAILED" in report.render()

    def test_at_threshold_is_not_a_regression(self):
        report = compare_artifacts(
            artifact_with({"a": 0.1}), artifact_with({"a": 0.2}),
            Thresholds(ratio=2.0),
        )
        assert report.ok

    def test_missing_benchmark_fails_new_is_informational(self):
        report = compare_artifacts(
            artifact_with({"a": 0.1, "gone": 0.1}),
            artifact_with({"a": 0.1, "fresh": 0.1}),
        )
        assert not report.ok
        assert [d.name for d in report.missing] == ["gone"]
        assert {d.name: d.status for d in report.deltas}["fresh"] == "new"

    def test_min_seconds_noise_floor_skips_fast_benchmarks(self):
        report = compare_artifacts(
            artifact_with({"a": 0.0001}), artifact_with({"a": 0.0009}),
            Thresholds(ratio=1.5, min_seconds=0.002),
        )
        assert report.ok
        assert report.deltas[0].status == "skipped-fast"

    def test_faster_is_reported_not_failed(self):
        report = compare_artifacts(
            artifact_with({"a": 0.3}), artifact_with({"a": 0.1}),
        )
        assert report.ok and report.deltas[0].status == "faster"

    def test_configurable_stat(self):
        baseline = artifact_with({"a": 0.1})
        current = artifact_with({"a": 0.1})
        current["benchmarks"]["a"]["stats"]["min"] = 0.5
        assert compare_artifacts(baseline, current).ok
        assert not compare_artifacts(
            baseline, current, Thresholds(stat="min")
        ).ok

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            Thresholds(ratio=1.0)
        with pytest.raises(ValueError):
            Thresholds(stat="max")


class TestBenchCLI:
    def run_cli(self, argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_list_renders_catalogue(self):
        code, text = self.run_cli(["bench", "--list"])
        assert code == 0
        for name in ("bdd.build_apply", "te.pf4.warm", "pipeline.motivating"):
            assert name in text

    def test_empty_selection_is_a_usage_error(self):
        code, text = self.run_cli(["bench", "--filter", "nonexistent"])
        assert code == 2
        assert "no benchmarks match" in text

    def test_save_produces_a_valid_artifact(self, tmp_path):
        path = tmp_path / "out.json"
        code, text = self.run_cli([
            "bench", "--filter", "apkeep", "--repeat", "1",
            "--save", str(path),
        ])
        assert code == 0
        artifact = read_artifact(path)  # validates on read
        assert set(artifact["benchmarks"]) == {
            "apkeep.build", "apkeep.update_burst",
        }
        assert str(path) in text

    def test_baseline_gate_fails_on_injected_2x_slowdown(self, tmp_path):
        path = tmp_path / "baseline.json"
        code, _ = self.run_cli([
            "bench", "--filter", "bdd", "--repeat", "2", "--save", str(path),
        ])
        assert code == 0
        artifact = read_artifact(path)
        for entry in artifact["benchmarks"].values():
            entry["stats"] = {k: v / 2 for k, v in entry["stats"].items()}
        path.write_text(json.dumps(artifact))
        code, text = self.run_cli([
            "bench", "--filter", "bdd", "--repeat", "2",
            "--baseline", str(path),
        ])
        assert code == 1
        assert "REGRESSION" in text and "FAILED" in text

    def test_baseline_gate_fails_on_missing_benchmarks(self, tmp_path):
        path = tmp_path / "baseline.json"
        self.run_cli([
            "bench", "--filter", "apkeep", "--repeat", "1",
            "--save", str(path),
        ])
        code, text = self.run_cli([
            "bench", "--filter", "apkeep.build", "--repeat", "1",
            "--baseline", str(path),
        ])
        assert code == 1
        assert "MISSING" in text

    def test_self_compare_passes(self, tmp_path):
        path = tmp_path / "baseline.json"
        self.run_cli([
            "bench", "--filter", "apkeep", "--repeat", "1",
            "--save", str(path),
        ])
        code, text = self.run_cli(["bench", "--compare", str(path), str(path)])
        assert code == 0
        assert "ok" in text

    def test_bad_artifact_is_a_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        code, text = self.run_cli(["bench", "--compare", str(bad), str(bad)])
        assert code == 2
        assert "error" in text

    def test_baseline_without_path_discovers_latest(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        self.run_cli([
            "bench", "--filter", "apkeep.build", "--repeat", "1",
            "--save", "BENCH_abc.json",
        ])
        # The subject is baseline *discovery*; a generous threshold
        # keeps single-iteration timing noise on a loaded machine from
        # turning the self-comparison into a flake.
        code, text = self.run_cli([
            "bench", "--filter", "apkeep.build", "--repeat", "1",
            "--baseline", "--threshold", "5.0",
        ])
        assert code == 0
        assert "baseline: BENCH_abc.json" in text

    def test_baseline_without_path_errors_when_no_artifact(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code, text = self.run_cli([
            "bench", "--filter", "apkeep.build", "--repeat", "1", "--baseline",
        ])
        assert code == 2
        assert "save one first" in text

    def test_compare_with_one_path_uses_latest_as_baseline(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        self.run_cli([
            "bench", "--filter", "apkeep.build", "--repeat", "1",
            "--save", "BENCH_abc.json",
        ])
        code, text = self.run_cli(["bench", "--compare", "BENCH_abc.json"])
        assert code == 0
        assert "baseline: BENCH_abc.json" in text

    def test_compare_with_three_paths_is_a_usage_error(self, tmp_path):
        code, text = self.run_cli(["bench", "--compare", "a", "b", "c"])
        assert code == 2
        assert "error" in text

    def test_store_benchmarks_are_registered(self):
        code, text = self.run_cli(["bench", "--list"])
        assert code == 0
        for name in (
            "store.put_get", "store.tunnels.cold", "store.tunnels.warm",
        ):
            assert name in text


class TestRepoLints:
    def test_docstring_lint_is_clean(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_docstrings.py")],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_doc_example_blocks_are_extracted(self):
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            from run_doc_examples import extract_blocks
        finally:
            sys.path.remove(str(REPO_ROOT / "tools"))
        blocks = extract_blocks(REPO_ROOT / "docs" / "BENCHMARKS.md")
        languages = {b.language for b in blocks}
        assert "bash" in languages and "python" in languages
