"""Tests for the campaign orchestrator and APKeep's scoped update check."""

import pytest

from repro.apkeep import APKeepVerifier
from repro.core.prompts import PromptStyle
from repro.experiments import CampaignResult, run_campaign
from repro.netmodel.datasets import build_verification_dataset
from repro.netmodel.headerspace import Prefix
from repro.netmodel.rules import ForwardingRule


class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_campaign(
            ["ap", "apkeep"],
            styles=[PromptStyle.MODULAR_PSEUDOCODE, PromptStyle.MONOLITHIC],
        )

    def test_run_count(self, campaign):
        assert campaign.num_runs == 4

    def test_modular_succeeds_monolithic_fails(self, campaign):
        by_style = campaign.by_style()
        assert by_style["modular-pseudocode"] == {"ok": 2, "failed": 0}
        assert by_style["monolithic"] == {"ok": 0, "failed": 2}

    def test_success_rate(self, campaign):
        assert campaign.success_rate == pytest.approx(0.5)

    def test_render(self, campaign):
        text = campaign.render()
        assert "4 runs" in text
        assert "ap/monolithic" in text
        assert "FAILED" in text

    def test_default_style(self):
        result = run_campaign(["rps"])
        assert result.num_runs == 1
        assert result.num_succeeded == 1

    def test_empty_campaign(self):
        result = run_campaign([])
        assert result.num_runs == 0
        assert result.success_rate == 0.0


class TestScopedUpdateVerification:
    def test_clean_update_reports_no_loops(self, internet2):
        verifier = APKeepVerifier(internet2)
        node = internet2.topology.nodes[0]
        neighbor = internet2.topology.successors(node)[0]
        rule = ForwardingRule(Prefix(0xF000, 4), neighbor, priority=80)
        changes = verifier.insert_rule(node, rule)
        assert verifier.verify_update(changes) == []

    def test_loop_creating_update_caught_scoped(self, internet2):
        verifier = APKeepVerifier(internet2)
        # Recreate the inject_loop perturbation through the live verifier:
        # make a transit hop bounce the destination prefix back.
        nodes = internet2.topology.nodes
        path = None
        for src in nodes:
            for dst in nodes:
                if src == dst:
                    continue
                candidate = internet2.topology.shortest_path(src, dst)
                if candidate and len(candidate) >= 3 and internet2.topology.has_link(
                    candidate[1], candidate[0]
                ):
                    path = candidate
                    break
            if path:
                break
        assert path is not None
        u, v = path[0], path[1]
        dst = path[-1]
        prefix = internet2.prefix_of[dst]
        rule = ForwardingRule(prefix, u, priority=prefix.length + 1)
        changes = verifier.insert_rule(v, rule)
        loops = verifier.verify_update(changes)
        assert loops, "the scoped check must catch the new loop"
        # And the scoped result agrees with the full check.
        assert bool(loops) == bool(verifier.find_loops())

    def test_no_changes_no_work(self, internet2):
        verifier = APKeepVerifier(internet2)
        assert verifier.verify_update([]) == []


class TestCampaignCLI:
    def test_cli_campaign(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(["campaign", "rps", "--styles", "modular-pseudocode"], out=out)
        assert code == 0
        assert "1 runs, 1 succeeded" in out.getvalue()

    def test_cli_campaign_failure_exit_code(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(["campaign", "rps", "--styles", "monolithic"], out=out)
        assert code == 1
