"""Tests for the reproduction framework: prompts, LLM model, assembly,
metrics, debugging policy."""

import pytest

from repro.core import (
    ChatSession,
    CodeArtifact,
    PromptBuilder,
    PromptStyle,
    SimulatedLLM,
    assemble_module,
    count_loc,
)
from repro.core.assembly import AssemblyError, check_imports
from repro.core.debugging import DebugPolicy, describe_failure
from repro.core.knowledge import get_knowledge, get_paper_spec, paper_keys
from repro.core.prompts import PromptKind
from repro.core.simulated import ComponentKnowledge, Defect, PaperKnowledge


class TestCountLoc:
    def test_blank_and_comment_lines_skipped(self):
        source = "\n".join(
            ["# comment", "", "x = 1", "   ", "y = 2  # trailing", "# more"]
        )
        assert count_loc(source) == 2

    def test_docstrings_skipped(self):
        source = '"""Module doc.\n\nSecond line.\n"""\nx = 1\n'
        assert count_loc(source) == 1

    def test_single_line_docstring(self):
        source = '"""One line."""\nx = 1\n'
        assert count_loc(source) == 1

    def test_docstring_sharing_line_with_code(self):
        source = '"""one-liner""" + compute()\ny = 2\n'
        assert count_loc(source) == 2

    def test_docstring_closing_line_with_trailing_code(self):
        source = '"""doc\nbody\n""" + tail()\ny = 2\n'
        assert count_loc(source) == 2

    def test_expression_triple_quoted_string_counts(self):
        source = 's = """first\nsecond\n"""\n'
        assert count_loc(source) == 3

    def test_hash_inside_string_is_not_a_comment(self):
        source = "x = '# not a comment'\n"
        assert count_loc(source) == 1

    def test_comment_after_code_still_counts(self):
        source = 'x = "a"  # trailing comment\n'
        assert count_loc(source) == 1

    def test_escaped_quote_inside_string(self):
        source = 'x = "he said \\"hi\\""\n# comment\n'
        assert count_loc(source) == 1

    def test_other_triple_delimiter_inside_docstring(self):
        source = "\"\"\"contains ''' inside\"\"\"\nx = 1\n"
        assert count_loc(source) == 1

    def test_docstring_with_hash_lines(self):
        source = '"""doc\n# looks like a comment\n"""\nx = 1\n'
        assert count_loc(source) == 1


class TestPromptBuilder:
    @pytest.fixture
    def builder(self):
        return PromptBuilder(get_paper_spec("ap"))

    def test_overview_mentions_components(self, builder):
        prompt = builder.system_overview()
        assert "bdd_setup" in prompt.text
        assert prompt.kind is PromptKind.SYSTEM_OVERVIEW

    def test_component_pseudocode_included(self, builder):
        spec = get_paper_spec("ap").component("atomic")
        prompt = builder.component(spec, PromptStyle.MODULAR_PSEUDOCODE)
        assert "atoms <- {true}" in prompt.text

    def test_component_text_style_omits_pseudocode(self, builder):
        spec = get_paper_spec("ap").component("atomic")
        prompt = builder.component(spec, PromptStyle.MODULAR_TEXT)
        assert "atoms <- {true}" not in prompt.text

    def test_monolithic_rejected_for_component(self, builder):
        spec = get_paper_spec("ap").component("atomic")
        with pytest.raises(ValueError):
            builder.component(spec, PromptStyle.MONOLITHIC)

    def test_word_count(self, builder):
        prompt = builder.debug_error("atomic", "TypeError: boom")
        assert prompt.word_count == len(prompt.text.split())


class TestPaperSpecs:
    @pytest.mark.parametrize("key", paper_keys())
    def test_dependency_order_valid(self, key):
        get_paper_spec(key).validate_dependency_order()

    def test_unknown_component(self):
        with pytest.raises(KeyError):
            get_paper_spec("ap").component("nonexistent")


class TestKnowledgeBases:
    @pytest.mark.parametrize("key", paper_keys())
    def test_every_defect_applies_and_compiles(self, key):
        knowledge = get_knowledge(key)
        for name, component in knowledge.components.items():
            for style in (PromptStyle.MODULAR_PSEUDOCODE, PromptStyle.MODULAR_TEXT):
                chain = component.defect_chain(style)
                for fixed in range(len(chain) + 1):
                    source = component.source_at(style, fixed)
                    compile(source, f"{key}:{name}", "exec")

    @pytest.mark.parametrize("key", paper_keys())
    def test_final_sources_have_no_forbidden_imports(self, key):
        knowledge = get_knowledge(key)
        for component in knowledge.components.values():
            check_imports(component.final_source)

    def test_defect_kind_validated(self):
        with pytest.raises(ValueError):
            Defect(PromptKind.GENERATE, "d", "a", "b")

    def test_stale_defect_detected(self):
        component = ComponentKnowledge(
            component="c",
            final_source="x = 1\n",
            defects=(
                Defect(PromptKind.DEBUG_ERROR, "d", "y = 2", "not-there"),
            ),
        )
        with pytest.raises(ValueError):
            component.source_at(PromptStyle.MODULAR_PSEUDOCODE, 0)


class TestSimulatedLLM:
    def make(self, key="ap"):
        return SimulatedLLM({key: get_knowledge(key)})

    def test_monolithic_returns_sketch(self):
        llm = self.make()
        session = ChatSession("X:ap")
        builder = PromptBuilder(get_paper_spec("ap"))
        response = llm.chat(session, builder.monolithic())
        assert response.has_code
        assert "NotImplementedError" in response.artifacts[0].source

    def test_generate_first_draft_has_defects(self):
        llm = self.make()
        session = ChatSession("X:ap")
        builder = PromptBuilder(get_paper_spec("ap"))
        spec = get_paper_spec("ap").component("bdd_setup")
        response = llm.chat(
            session, builder.component(spec, PromptStyle.MODULAR_PSEUDOCODE)
        )
        knowledge = get_knowledge("ap").components["bdd_setup"]
        assert response.artifacts[0].source != knowledge.final_source

    def test_matching_feedback_fixes_defect(self):
        llm = self.make()
        session = ChatSession("X:ap")
        builder = PromptBuilder(get_paper_spec("ap"))
        spec = get_paper_spec("ap").component("bdd_setup")
        llm.chat(session, builder.component(spec, PromptStyle.MODULAR_PSEUDOCODE))
        response = llm.chat(
            session, builder.debug_error("bdd_setup", "IndexError: variable 16")
        )
        knowledge = get_knowledge("ap").components["bdd_setup"]
        assert response.artifacts[0].source == knowledge.final_source

    def test_wrong_guideline_makes_no_progress(self):
        llm = self.make()
        session = ChatSession("X:ap")
        builder = PromptBuilder(get_paper_spec("ap"))
        spec = get_paper_spec("ap").component("bdd_setup")
        first = llm.chat(
            session, builder.component(spec, PromptStyle.MODULAR_PSEUDOCODE)
        )
        # bdd_setup's defect is an ERROR defect; test-case feedback misses.
        response = llm.chat(
            session, builder.debug_testcase("bdd_setup", "case fails")
        )
        assert response.artifacts[0].source == first.artifacts[0].source

    def test_debug_before_generate_is_safe(self):
        llm = self.make()
        session = ChatSession("X:ap")
        builder = PromptBuilder(get_paper_spec("ap"))
        response = llm.chat(session, builder.debug_error("bdd_setup", "boom"))
        assert not response.has_code

    def test_unknown_paper_rejected(self):
        llm = self.make()
        session = ChatSession("X:unknown-paper")
        builder = PromptBuilder(get_paper_spec("ap"))
        with pytest.raises(KeyError):
            llm.chat(session, builder.system_overview())

    def test_text_style_adds_interop_defect(self):
        llm = self.make()
        knowledge = get_knowledge("ap").components["reachability"]
        pseudo_chain = knowledge.defect_chain(PromptStyle.MODULAR_PSEUDOCODE)
        text_chain = knowledge.defect_chain(PromptStyle.MODULAR_TEXT)
        assert len(text_chain) == len(pseudo_chain) + 1

    def test_sessions_are_independent(self):
        llm = self.make()
        builder = PromptBuilder(get_paper_spec("ap"))
        spec = get_paper_spec("ap").component("bdd_setup")
        s1, s2 = ChatSession("X:ap"), ChatSession("Y:ap")
        llm.chat(s1, builder.component(spec, PromptStyle.MODULAR_PSEUDOCODE))
        llm.chat(s1, builder.debug_error("bdd_setup", "IndexError"))
        response = llm.chat(
            s2, builder.component(spec, PromptStyle.MODULAR_PSEUDOCODE)
        )
        knowledge = get_knowledge("ap").components["bdd_setup"]
        assert response.artifacts[0].source != knowledge.final_source


class TestChatSession:
    def test_counters(self):
        llm = SimulatedLLM({"ap": get_knowledge("ap")})
        session = ChatSession("X:ap")
        builder = PromptBuilder(get_paper_spec("ap"))
        llm.chat(session, builder.system_overview())
        llm.chat(session, builder.interfaces())
        assert session.num_prompts == 2
        assert session.total_words > 0
        assert session.prompts_by_kind() == {
            "system-overview": 1,
            "interfaces": 1,
        }

    def test_latest_artifact(self):
        llm = SimulatedLLM({"ap": get_knowledge("ap")})
        session = ChatSession("X:ap")
        builder = PromptBuilder(get_paper_spec("ap"))
        spec = get_paper_spec("ap").component("bdd_setup")
        llm.chat(session, builder.component(spec, PromptStyle.MODULAR_PSEUDOCODE))
        artifact = session.latest_artifact("bdd_setup")
        assert artifact is not None and artifact.component == "bdd_setup"
        assert session.latest_artifact("nonexistent") is None


class TestAssembly:
    def test_forbidden_import_rejected(self):
        artifact = CodeArtifact("x", "python", "from repro.ap import APVerifier\n", 0)
        with pytest.raises(AssemblyError):
            assemble_module([artifact])

    def test_allowed_import_passes(self):
        artifact = CodeArtifact(
            "x", "python", "from repro.bdd.engine import JDDEngine\n", 0
        )
        module = assemble_module([artifact])
        assert hasattr(module, "JDDEngine")

    def test_execution_error_reported_with_component(self):
        artifact = CodeArtifact("broken", "python", "raise ValueError('boom')\n", 0)
        with pytest.raises(AssemblyError, match="broken"):
            assemble_module([artifact])

    def test_namespace_shared_between_artifacts(self):
        first = CodeArtifact("a", "python", "VALUE = 41\n", 0)
        second = CodeArtifact("b", "python", "RESULT = VALUE + 1\n", 0)
        module = assemble_module([first, second])
        assert module.RESULT == 42


class TestDebugPolicy:
    def test_runtime_error_uses_error_guideline(self):
        policy = DebugPolicy(PromptBuilder(get_paper_spec("ap")))
        prompt = policy.next_prompt("atomic", TypeError("bad type"))
        assert prompt.kind is PromptKind.DEBUG_ERROR
        assert "bad type" in prompt.text

    def test_assertion_uses_testcase_then_logic(self):
        policy = DebugPolicy(
            PromptBuilder(get_paper_spec("ap")), {"atomic": "do it right"}
        )
        first = policy.next_prompt("atomic", AssertionError("wrong output"))
        second = policy.next_prompt("atomic", AssertionError("still wrong"))
        assert first.kind is PromptKind.DEBUG_TESTCASE
        assert second.kind is PromptKind.DEBUG_LOGIC
        assert "do it right" in second.text

    def test_reset_restores_testcase_first(self):
        policy = DebugPolicy(PromptBuilder(get_paper_spec("ap")))
        policy.next_prompt("atomic", AssertionError("x"))
        policy.reset("atomic")
        prompt = policy.next_prompt("atomic", AssertionError("y"))
        assert prompt.kind is PromptKind.DEBUG_TESTCASE

    def test_describe_failure(self):
        text = describe_failure(ValueError("boom"))
        assert "ValueError" in text and "boom" in text
