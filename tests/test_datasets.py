"""Tests for the verification dataset builders and anomaly injection."""

import pytest

from repro.netmodel.datasets import (
    build_verification_dataset,
    inject_blackhole,
    inject_loop,
)
from repro.netmodel.rules import DROP_PORT, SELF_PORT


class TestBuild:
    def test_every_device_has_rules(self, internet2):
        assert set(internet2.devices) == set(internet2.topology.nodes)
        for device in internet2.devices.values():
            assert device.num_rules >= internet2.topology.num_nodes

    def test_own_prefix_delivered_locally(self, internet2):
        for node, prefix in internet2.prefix_of.items():
            assert internet2.devices[node].lookup(prefix.value) == SELF_PORT

    def test_routes_follow_topology(self, internet2):
        for node, device in internet2.devices.items():
            for rule in device.rules:
                if rule.port in (DROP_PORT, SELF_PORT):
                    continue
                assert internet2.topology.has_link(node, rule.port), (
                    f"{node} forwards to non-neighbour {rule.port}"
                )

    def test_forwarding_actually_reaches_destination(self, internet2):
        nodes = internet2.topology.nodes
        for src in nodes[:4]:
            for dst in nodes[-4:]:
                if src == dst:
                    continue
                address = internet2.prefix_of[dst].value
                device = src
                for _ in range(len(nodes) + 1):
                    port = internet2.devices[device].lookup(address)
                    if port == SELF_PORT:
                        break
                    assert port != DROP_PORT, f"{src}->{dst} dropped at {device}"
                    device = port
                assert device == dst

    def test_stanford_has_acls(self, stanford):
        assert any(d.has_acl for d in stanford.devices.values())

    def test_internet2_has_no_acls(self, internet2):
        assert not any(d.has_acl for d in internet2.devices.values())

    def test_copy_is_deep(self, internet2):
        from repro.netmodel.headerspace import Prefix
        from repro.netmodel.rules import ForwardingRule

        clone = internet2.copy()
        node = clone.topology.nodes[0]
        before = internet2.devices[node].num_rules
        clone.devices[node].add_rule(
            ForwardingRule(Prefix.full(), DROP_PORT, priority=99)
        )
        assert internet2.devices[node].num_rules == before

    def test_total_rules_counts(self, internet2):
        assert internet2.total_rules == sum(
            d.num_rules for d in internet2.devices.values()
        )

    def test_all_rules_deterministic_order(self, internet2):
        first = internet2.all_rules()
        second = internet2.all_rules()
        assert first == second


class TestInjection:
    def test_inject_loop_creates_cycle(self, internet2):
        perturbed, (u, v) = inject_loop(internet2, seed=3)
        assert perturbed.topology.has_link(v, u)
        # The perturbed dataset has one more rule than the original.
        assert perturbed.total_rules == internet2.total_rules + 1
        # Original untouched.
        assert internet2.total_rules == sum(
            d.num_rules for d in internet2.devices.values()
        )

    def test_inject_blackhole_drops(self, internet2):
        perturbed, device = inject_blackhole(internet2, seed=3)
        assert perturbed.total_rules == internet2.total_rules + 1
        # The injected rule wins for its prefix at that device.
        injected = [
            rule
            for rule in perturbed.devices[device].rules
            if rule.port == DROP_PORT and rule.priority > 0
        ]
        assert injected
        address = injected[0].prefix.value
        assert perturbed.devices[device].lookup(address) == DROP_PORT

    def test_injection_deterministic(self, internet2):
        _, where_a = inject_loop(internet2, seed=7)
        _, where_b = inject_loop(internet2, seed=7)
        assert where_a == where_b
