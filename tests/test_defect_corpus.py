"""Systematic validation of the whole seeded-defect corpus.

For every component of every knowledge base and every defect in its
chain: the revision where ONLY that defect is outstanding must fail the
participant's component test, with a failure message containing the
defect's ``error_hint``, and the failure's type must match the defect's
debugging-guideline kind (runtime errors for DEBUG_ERROR, assertion
failures for the two logic kinds).  This pins the simulated experiment's
whole causal chain: defect -> observable failure -> matching guideline.
"""

import pytest

from repro.core.assembly import AssemblyError, assemble_module
from repro.core.knowledge import (
    get_component_tests,
    get_knowledge,
    get_paper_spec,
    paper_keys,
)
from repro.core.llm import CodeArtifact
from repro.core.prompts import PromptKind, PromptStyle


def _cases():
    cases = []
    for key in paper_keys():
        knowledge = get_knowledge(key)
        spec = get_paper_spec(key)
        for component in spec.components:
            chain = knowledge.components[component.name].defect_chain(
                PromptStyle.MODULAR_PSEUDOCODE
            )
            for index in range(len(chain)):
                cases.append((key, component.name, index))
    return cases


def _module_with_single_defect(key, component_name, defect_index):
    """Assemble the system final everywhere except one outstanding defect."""
    knowledge = get_knowledge(key)
    spec = get_paper_spec(key)
    artifacts = []
    for component in spec.components:
        entry = knowledge.components[component.name]
        if component.name == component_name:
            chain = entry.defect_chain(PromptStyle.MODULAR_PSEUDOCODE)
            fixed = set(range(len(chain))) - {defect_index}
            source = entry.source_with(PromptStyle.MODULAR_PSEUDOCODE, fixed)
        else:
            source = entry.final_source
        artifacts.append(CodeArtifact(component.name, "python", source, 0))
    return assemble_module(artifacts, f"defective_{key}_{component_name}")


@pytest.mark.parametrize("key,component,index", _cases())
def test_every_defect_manifests_and_matches_its_guideline(key, component, index):
    knowledge = get_knowledge(key)
    chain = knowledge.components[component].defect_chain(
        PromptStyle.MODULAR_PSEUDOCODE
    )
    defect = chain[index]
    tests = get_component_tests(key)
    test = tests.get(component)
    assert test is not None, f"{key}:{component} has defects but no test"

    try:
        module = _module_with_single_defect(key, component, index)
    except AssemblyError as exc:
        failure = exc.__cause__ or exc
    else:
        failure = None
        try:
            test(module)
        except BaseException as exc:  # the participant's test catches all
            failure = exc
    assert failure is not None, (
        f"{key}:{component} defect {index} ({defect.kind.value}) never "
        "manifests -- the debugging loop could not be exercised"
    )

    # Failure type must match the guideline that fixes the defect.
    if defect.kind is PromptKind.DEBUG_ERROR:
        assert not isinstance(failure, AssertionError), (
            f"{key}:{component} defect {index}: expected a runtime error, "
            f"got assertion {failure}"
        )
    else:
        assert isinstance(failure, AssertionError), (
            f"{key}:{component} defect {index}: expected a failing test "
            f"case, got {type(failure).__name__}: {failure}"
        )

    # The recorded hint must describe the observed failure.
    if defect.error_hint:
        message = f"{type(failure).__name__}: {failure}"
        assert defect.error_hint in message, (
            f"{key}:{component} defect {index}: hint {defect.error_hint!r} "
            f"not in failure {message!r}"
        )


def test_corpus_is_nontrivial():
    assert len(_cases()) >= 12
