"""Edge-case tests across the library: the corners the main suites skip."""

import pytest

from repro.apkeep.element import ACL_DENY, ACL_PERMIT, AclElement
from repro.ap import traversal
from repro.bdd.builder import new_engine
from repro.bdd.engine import BDD_FALSE, BDD_TRUE
from repro.lp import LinExpr, Model
from repro.lp.backends import parse_lp_text, write_lp_text
from repro.netmodel.headerspace import Prefix
from repro.netmodel.rules import AclAction, AclRule
from repro.netmodel.topology import Topology


class TestLPTextEdgeCases:
    def test_negative_rhs(self):
        model = Model("neg")
        x = model.add_var(name="x", lower=-10, upper=10)
        model.add_constraint(x >= -3)
        model.minimize(x)
        recovered = parse_lp_text(write_lp_text(model))
        assert recovered.solve().objective == pytest.approx(-3.0)

    def test_equality_and_ge_mixed(self):
        model = Model("mix")
        x = model.add_var(name="x", upper=10)
        y = model.add_var(name="y", upper=10)
        model.add_constraint((x + y).equals(6.0))
        model.add_constraint(x - y >= 2.0)
        model.maximize(y)
        original = model.solve()
        recovered = parse_lp_text(write_lp_text(model)).solve()
        assert recovered.objective == pytest.approx(original.objective)

    def test_weird_variable_names_sanitised(self):
        model = Model("names")
        a = model.add_var(name="f[a->b:0]", upper=2)
        b = model.add_var(name="f[a->b:1]", upper=2)
        model.add_constraint(a + b <= 3)
        model.maximize(a + b)
        recovered = parse_lp_text(write_lp_text(model))
        assert recovered.solve().objective == pytest.approx(3.0)

    def test_duplicate_names_disambiguated(self):
        model = Model("dups")
        a = model.add_var(name="x", upper=1)
        b = model.add_var(name="x", upper=2)
        model.maximize(a + b)
        recovered = parse_lp_text(write_lp_text(model))
        assert recovered.num_vars == 2
        assert recovered.solve().objective == pytest.approx(3.0)

    def test_scientific_notation_coefficients(self):
        model = Model("sci")
        x = model.add_var(name="x", upper=1e6)
        model.add_constraint(1e-3 * x <= 500.0)
        model.maximize(x)
        recovered = parse_lp_text(write_lp_text(model))
        assert recovered.solve().objective == pytest.approx(500000.0)


class TestAclElementRemoval:
    def test_remove_restores_permit(self):
        engine = new_engine("jdd")
        acl = AclElement("acl:r", engine)
        deny = AclRule(Prefix(0x8000, 1), AclAction.DENY, 5)
        acl.insert(deny)
        half = 1 << 15
        assert engine.satcount(acl.permit_bdd()) == half
        acl.insert(AclRule(Prefix(0xC000, 2), AclAction.PERMIT, 9))
        allowed_with_both = engine.satcount(acl.permit_bdd())
        assert allowed_with_both == half + (1 << 14)
        acl.remove(deny)
        assert engine.satcount(acl.permit_bdd()) == 1 << 16
        assert acl.check_partition()

    def test_ports_fixed(self):
        engine = new_engine("jdd")
        acl = AclElement("acl:r", engine)
        assert acl.ports() == [ACL_DENY, ACL_PERMIT]
        assert acl.num_rules == 0


class TestTraversalDirect:
    def build_labels(self):
        # Two-node chain: all atoms flow a -> b, atom 1 dropped at a.
        topo = Topology("two")
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b", 1.0)
        port_atoms = {
            ("a", "b"): frozenset({0}),
            ("a", "drop"): frozenset({1}),
            ("b", "self"): frozenset({0, 1}),
        }
        acl_atoms = {"a": frozenset({0, 1}), "b": frozenset({0, 1})}
        return topo, port_atoms, acl_atoms

    def test_selective_bfs(self):
        topo, port_atoms, acl_atoms = self.build_labels()
        got = traversal.selective_bfs(
            topo, port_atoms, acl_atoms, "a", "b", frozenset({0, 1})
        )
        assert got == frozenset({0})

    def test_path_enumeration_matches(self):
        topo, port_atoms, acl_atoms = self.build_labels()
        got, explored = traversal.path_enumeration_reach(
            topo, port_atoms, acl_atoms, "a", "b", frozenset({0, 1})
        )
        assert got == frozenset({0})
        assert explored == 1

    def test_blackhole_scoping(self):
        topo, port_atoms, acl_atoms = self.build_labels()
        all_reports = traversal.find_blackholes(topo, port_atoms, acl_atoms)
        assert all_reports == [("a", frozenset({1}))]
        scoped = traversal.find_blackholes(
            topo, port_atoms, acl_atoms, scope=frozenset({0})
        )
        assert scoped == []

    def test_next_port_map(self):
        _, port_atoms, _ = self.build_labels()
        table = traversal.build_next_port(port_atoms)
        assert table["a"][0] == "b"
        assert table["a"][1] == "drop"

    def test_rotate_cycle(self):
        assert traversal.rotate_cycle(("c", "a", "b")) == ("a", "b", "c")


class TestSimulatedSourceWith:
    def test_arbitrary_subset(self):
        from repro.core.knowledge import get_knowledge
        from repro.core.prompts import PromptStyle

        component = get_knowledge("ap").components["reachability"]
        chain = component.defect_chain(PromptStyle.MODULAR_PSEUDOCODE)
        assert len(chain) == 2
        only_second = component.source_with(
            PromptStyle.MODULAR_PSEUDOCODE, {1}
        )
        # Defect 0 (count off-by-one) still present, defect 1 repaired.
        assert "- 1" in only_second.split("def count_atoms")[1][:80]
        assert "        return frozenset(atoms)\n        arrived" not in only_second


class TestMotivatingHarnessFailures:
    def test_crashing_server_reported(self):
        import types

        module = types.ModuleType("bad_rps")

        def run_server(host, port, max_rounds=None, ready=None):
            raise RuntimeError("cannot bind")

        module.run_server = run_server
        module.run_client = lambda host, port, moves=None: []
        from repro.motivating.harness import play_scripted_game

        with pytest.raises(RuntimeError, match="server crashed"):
            play_scripted_game(module, timeout=5)


class TestStudyYearFraction:
    def test_year_fraction_defined_everywhere(self):
        from repro.study import build_corpus, opensource_stats

        stats = opensource_stats(build_corpus())
        for venue in ("SIGCOMM", "NSDI"):
            for year in range(2013, 2023):
                fraction = stats.year_fraction(venue, year)
                assert 0.0 <= fraction <= 1.0


class TestBddEvaluate:
    def test_evaluate_matches_satcount_membership(self):
        engine = new_engine("jdd")
        from repro.bdd.builder import prefix_to_bdd
        from repro.netmodel.headerspace import HEADER_BITS

        prefix = Prefix(0x1200, 8)
        node = prefix_to_bdd(engine, prefix)
        for address in (0x1200, 0x12FF, 0x1300, 0x0000):
            assignment = {
                i: bool((address >> (HEADER_BITS - 1 - i)) & 1)
                for i in range(HEADER_BITS)
            }
            assert engine.evaluate(node, assignment) == prefix.contains_address(
                address
            )

    def test_clear_cache_keeps_semantics(self):
        engine = new_engine("jdd")
        a = engine.var(0)
        b = engine.var(1)
        before = engine.and_(a, b)
        engine.clear_cache()
        after = engine.and_(a, b)
        assert before == after
