"""Smoke tests: every example script must run cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    ("quickstart.py", [], "PASSED"),
    ("study_stats.py", [], "Figure 2"),
    ("verify_dataplane.py", ["Internet2"], "loop(s)"),
    ("reproduce_te_system.py", ["Uninett2010"], "objective difference"),
    ("full_experiment.py", [], "all succeeded: True"),
    ("semi_automatic.py", [], "objective-gap"),
]


@pytest.mark.parametrize("script,args,marker", EXAMPLES)
def test_example_runs(script, args, marker):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert marker in result.stdout, (
        f"{script} output missing {marker!r}:\n{result.stdout[-2000:]}"
    )


def test_example_with_bad_argument_fails_cleanly():
    path = os.path.join(EXAMPLES_DIR, "verify_dataplane.py")
    result = subprocess.run(
        [sys.executable, path, "NoSuchDataset"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode != 0
    assert "unknown dataset" in result.stderr
