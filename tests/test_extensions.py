"""Tests for the section-4 extension modules: transcripts, paper
documents, discrepancy analysis, and the CLI."""

import io
import json

import pytest

from repro.core.knowledge import get_knowledge, get_paper_spec, paper_keys
from repro.core.llm import ChatSession
from repro.core.paperdoc import PaperDocError, parse_paperdoc, render_paperdoc
from repro.core.prompts import PromptBuilder, PromptStyle
from repro.core.simulated import SimulatedLLM
from repro.core.transcript import summarize, to_json, to_markdown


def run_small_session():
    llm = SimulatedLLM({"ap": get_knowledge("ap")})
    session = ChatSession("T:ap")
    builder = PromptBuilder(get_paper_spec("ap"))
    llm.chat(session, builder.system_overview())
    spec = get_paper_spec("ap").component("bdd_setup")
    llm.chat(session, builder.component(spec, PromptStyle.MODULAR_PSEUDOCODE))
    llm.chat(session, builder.debug_error("bdd_setup", "IndexError: boom"))
    return session


class TestTranscript:
    def test_markdown_contains_exchanges(self):
        session = run_small_session()
        text = to_markdown(session)
        assert "# Conversation log: T:ap" in text
        assert text.count("## Exchange") == 3
        assert "```python" in text
        assert "IndexError: boom" in text

    def test_json_round_trips(self):
        session = run_small_session()
        payload = json.loads(to_json(session))
        assert payload["num_prompts"] == 3
        assert len(payload["exchanges"]) == 3
        assert payload["exchanges"][1]["artifacts"][0]["component"] == "bdd_setup"
        assert payload["total_words"] == session.total_words

    def test_summary_one_line_per_exchange(self):
        session = run_small_session()
        lines = summarize(session).splitlines()
        assert len(lines) == 3
        assert "debug-error" in lines[2]


class TestPaperDoc:
    @pytest.mark.parametrize("key", paper_keys())
    def test_round_trip_every_spec(self, key):
        spec = get_paper_spec(key)
        recovered = parse_paperdoc(render_paperdoc(spec))
        assert recovered.key == spec.key
        assert recovered.title == spec.title
        assert recovered.venue == spec.venue
        assert recovered.year == spec.year
        assert recovered.component_names == spec.component_names
        for got, want in zip(recovered.components, spec.components):
            assert got.interfaces == want.interfaces
            assert got.depends_on == want.depends_on
            assert (got.pseudocode is None) == (want.pseudocode is None)
            if want.pseudocode is not None:
                assert got.pseudocode.text.strip() == want.pseudocode.text.strip()

    def test_minimal_document(self):
        doc = (
            "# Tiny System\n"
            "key: tiny\nvenue: TEST\nyear: 2024\n\n"
            "summary: does one thing.\n\n"
            "## component: core\n"
            "The only component.\n\n"
            "interfaces:\n- run() -> int\n"
        )
        spec = parse_paperdoc(doc)
        assert spec.key == "tiny"
        assert spec.components[0].interfaces == ("run() -> int",)

    def test_missing_title_rejected(self):
        with pytest.raises(PaperDocError):
            parse_paperdoc("key: x\nvenue: V\nyear: 2024\n## component: a\nd\n")

    def test_missing_header_rejected(self):
        with pytest.raises(PaperDocError):
            parse_paperdoc("# T\nvenue: V\n\n## component: a\nd\n")

    def test_no_components_rejected(self):
        with pytest.raises(PaperDocError):
            parse_paperdoc("# T\nkey: k\nvenue: V\nyear: 2024\nsummary: s\n")

    def test_dependency_order_enforced(self):
        doc = (
            "# T\nkey: k\nvenue: V\nyear: 2024\n\nsummary: s\n\n"
            "## component: a\ndepends: b\nfirst\n\n"
            "## component: b\nsecond\n"
        )
        with pytest.raises(ValueError):
            parse_paperdoc(doc)

    def test_pseudocode_block_parsed(self):
        doc = (
            "# T\nkey: k\nvenue: V\nyear: 2024\n\nsummary: s\n\n"
            "## component: a\nthe component\n\n"
            "pseudocode Listing 1:\n"
            "    for each x:\n"
            "        do(x)\n"
        )
        spec = parse_paperdoc(doc)
        pseudo = spec.components[0].pseudocode
        assert pseudo is not None
        assert pseudo.name == "Listing 1"
        assert "for each x:" in pseudo.text
        assert "    do(x)" in pseudo.text


class TestDiscrepancyAnalysis:
    def build(self, key):
        from repro.core.assembly import assemble_module
        from repro.core.llm import CodeArtifact

        knowledge = get_knowledge(key)
        artifacts = [
            CodeArtifact(
                c.name, "python", knowledge.components[c.name].final_source, 9
            )
            for c in get_paper_spec(key).components
        ]
        return assemble_module(artifacts, f"disc_{key}")

    def test_arrow_finds_the_inconsistency(self):
        from repro.core.discrepancy import analyze

        report = analyze("arrow", self.build("arrow"))
        assert not report.clean
        assert "objective-gap" in report.kinds()

    def test_ap_finds_both_latency_gaps(self):
        from repro.core.discrepancy import analyze

        report = analyze("ap", self.build("ap"))
        assert not report.clean
        assert report.kinds() == ["latency-gap"]
        # Two distinct latency findings: predicates and verification.
        assert len(report.findings) >= 2

    def test_apkeep_is_clean(self):
        from repro.core.discrepancy import analyze

        report = analyze("apkeep", self.build("apkeep"))
        assert report.clean

    def test_unknown_system_rejected(self):
        from repro.core.discrepancy import analyze

        with pytest.raises(KeyError):
            analyze("quic", None)

    def test_render_mentions_findings(self):
        from repro.core.discrepancy import analyze

        report = analyze("arrow", self.build("arrow"))
        text = report.render()
        assert "objective-gap" in text
        assert "arrow" in text


class TestCLI:
    def run_cli(self, *argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_study(self):
        code, text = self.run_cli("study")
        assert code == 0
        assert "SIGCOMM 32.5%" in text

    def test_te_pf4(self):
        code, text = self.run_cli("te", "B4", "--solver", "pf4",
                                  "--commodities", "40")
        assert code == 0
        assert "pf4:" in text

    def test_verify_with_loop(self):
        code, text = self.run_cli("verify", "Internet2", "--inject", "loop")
        assert code == 0
        assert "loops=1" in text

    def test_participant(self):
        code, text = self.run_cli("participant", "D")
        assert code == 0
        assert "ap" in text and "ok" in text

    def test_participant_monolithic_fails(self):
        code, text = self.run_cli(
            "participant", "D", "--style", "monolithic"
        )
        assert code == 1

    def test_motivating(self):
        code, text = self.run_cli("motivating")
        assert code == 0
        assert "4 prompts, 159 words, 93 LoC" in text

    def test_paperdoc_renders(self):
        code, text = self.run_cli("paperdoc", "apkeep")
        assert code == 0
        assert "## component: element_update" in text
        assert "IdentifyChangesInsert" in text

    def test_transcript_summary(self):
        code, text = self.run_cli("transcript", "C", "--format", "summary")
        assert code == 0
        assert "system-overview" in text

    def test_transcript_to_file(self, tmp_path):
        target = tmp_path / "log.md"
        code, text = self.run_cli(
            "transcript", "D", "--out", str(target)
        )
        assert code == 0
        content = target.read_text()
        assert "# Conversation log" in content


class TestCLIExperiment:
    def test_experiment_command(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(["experiment"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "Figure 4" in text and "Figure 5" in text
        assert "all succeeded: True" in text
