"""The fuzz subsystem itself: schedule, registry, runner, minimizer.

``tests/test_fuzz_equivalence.py`` exercises the *oracles* (do the
systems under test agree?); this module exercises the *harness* -- that
the schedule is deterministic, crashes and timeouts are isolated into
structured records, the planted defect is caught and shrunk to a
byte-identical artifact, and every stored failure replays.
"""

import io
import json
import time

import pytest

from repro import fuzz
from repro.fuzz import generators, minimize, oracles, runner
from repro.fuzz.oracles import OracleFailure, OracleSpec, UnknownOracleError
from repro.fuzz.watchdog import CaseTimeout, call_with_timeout
from repro.resilience import faults
from repro.store import ArtifactStore

SEED = 7


def canonical_payload(failure):
    """Sorted-key JSON of the artifact body: the byte-identity witness."""
    return json.dumps(failure.payload(), sort_keys=True)


# ----------------------------------------------------------------------
# Generators / schedule
# ----------------------------------------------------------------------
class TestSchedule:
    def test_case_seed_deterministic_and_distinct(self):
        assert generators.case_seed(1, 2, "te") == generators.case_seed(
            1, 2, "te"
        )
        seeds = {
            generators.case_seed(s, i, k)
            for s in (0, 1)
            for i in range(5)
            for k in generators.KINDS
        }
        assert len(seeds) == 2 * 5 * len(generators.KINDS)

    @pytest.mark.parametrize("kind", generators.KINDS)
    def test_generate_case_replays_from_triple(self, kind):
        one = generators.generate_case(SEED, 3, kind)
        two = generators.generate_case(SEED, 3, kind)
        assert one == two
        assert one.data == two.data

    def test_generate_case_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            generators.generate_case(SEED, 0, "quantum")

    def test_te_case_materializes(self):
        case = generators.generate_case(SEED, 0, "te")
        topo, traffic, scales = generators.materialize_te(case.data)
        assert topo.num_nodes == len(case.data["nodes"])
        assert traffic.total_demand > 0
        assert scales == sorted(scales)

    def test_dataplane_case_materializes(self):
        case = generators.generate_case(SEED, 0, "dataplane")
        dataset, updates = generators.materialize_dataplane(case.data)
        assert dataset.topology.num_nodes == len(case.data["nodes"])
        assert len(updates) == len(case.data["updates"])

    def test_case_sizes_counts_elements(self):
        case = generators.generate_case(SEED, 0, "te")
        sizes = generators.case_sizes(case.data)
        assert sizes["nodes"] == len(case.data["nodes"])
        assert sizes["demands"] == len(case.data["demands"])


# ----------------------------------------------------------------------
# Oracle registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_unknown_oracle_suggests_close_matches(self):
        with pytest.raises(UnknownOracleError) as excinfo:
            oracles.get_spec("te.warm-equals-cool")
        assert "te.warm-equals-cold" in excinfo.value.suggestions

    def test_register_unregister_roundtrip(self):
        spec = OracleSpec("test.probe", "te", lambda case: None, "probe")
        oracles.register(spec)
        try:
            assert "test.probe" in oracles.oracle_names()
            with pytest.raises(ValueError):
                oracles.register(spec)
            oracles.register(spec, replace=True)
        finally:
            assert oracles.unregister("test.probe") is spec
        assert "test.probe" not in oracles.oracle_names()

    def test_register_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            oracles.register(
                OracleSpec("test.bad-kind", "quantum", lambda case: None)
            )

    def test_run_oracle_rejects_kind_mismatch(self):
        case = generators.generate_case(SEED, 0, "dataplane")
        with pytest.raises(ValueError):
            oracles.run_oracle("te.bounds", case)

    def test_render_table_lists_every_oracle(self):
        table = oracles.render_table()
        for name in oracles.oracle_names():
            assert name in table


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------
class TestWatchdog:
    def test_returns_value_inline_and_threaded(self):
        assert call_with_timeout(lambda: 42, None) == 42
        assert call_with_timeout(lambda: 42, 5.0) == 42

    def test_propagates_exception(self):
        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            call_with_timeout(boom, 5.0)

    def test_times_out_and_abandons(self):
        with pytest.raises(CaseTimeout) as excinfo:
            call_with_timeout(lambda: time.sleep(5), 0.05)
        assert excinfo.value.seconds == 0.05


# ----------------------------------------------------------------------
# Failure classification
# ----------------------------------------------------------------------
class TestClassification:
    def test_divergence_timeout_crash(self):
        assert minimize.classify_failure(OracleFailure("o", "m")) == (
            "divergence", "OracleFailure",
        )
        assert minimize.classify_failure(CaseTimeout(1.0)) == (
            "timeout", "CaseTimeout",
        )
        assert minimize.classify_failure(RuntimeError("x")) == (
            "crash", "RuntimeError",
        )


# ----------------------------------------------------------------------
# Runner: isolation, exit semantics, budget
# ----------------------------------------------------------------------
def _probe(name, check):
    return OracleSpec(name, "dataplane", check, "test probe")


class TestRunner:
    def test_clean_sweep_is_ok(self):
        report = fuzz.run_fuzz(
            seed=SEED, cases=2, oracle_filter=["ap.vs-apkeep"],
            minimize=False,
        )
        assert report.ok
        assert report.cases_run == 2
        assert report.oracle_runs == 2
        assert "no failures" in report.render()

    def test_crashing_oracle_is_isolated(self):
        def crash(case):
            raise RuntimeError("oracle blew up")

        good_runs = []
        specs = [
            _probe("test.crasher", crash),
            _probe("test.good", lambda case: good_runs.append(case.index)),
        ]
        report = fuzz.run_fuzz(
            seed=SEED, cases=3, oracle_filter=specs, minimize=False,
        )
        # The crash never killed the sweep: the good oracle ran every case.
        assert good_runs == [0, 1, 2]
        assert not report.ok
        assert len(report.failures) == 3
        assert {f.failure for f in report.failures} == {"crash"}
        assert report.failures[0].error == "RuntimeError"

    def test_hanging_oracle_times_out(self):
        def hang(case):
            time.sleep(5)

        report = fuzz.run_fuzz(
            seed=SEED, cases=1, oracle_filter=[_probe("test.hang", hang)],
            case_timeout=0.05, minimize=False,
        )
        assert len(report.failures) == 1
        assert report.failures[0].failure == "timeout"
        assert report.failures[0].error == "CaseTimeout"

    def test_budget_stops_scheduling(self):
        def slow(case):
            time.sleep(0.05)

        report = fuzz.run_fuzz(
            seed=SEED, budget_seconds=0.01,
            oracle_filter=[_probe("test.slow", slow)], minimize=False,
        )
        assert report.stopped_on_budget
        # One batch in flight finishes; nothing more is scheduled.
        assert report.cases_run <= 2

    def test_injected_task_faults_become_crash_records(self):
        plan = faults.FaultPlan(seed=1, rate=1.0, sites=("parallel.task",))
        with faults.chaos(plan):
            report = fuzz.run_fuzz(
                seed=SEED, cases=2, workers=2,
                oracle_filter=[_probe("test.ok", lambda case: None)],
                minimize=False,
            )
        assert len(report.failures) == 2
        assert {f.failure for f in report.failures} == {"crash"}

    def test_warm_session_chaos_never_masks(self):
        # Full-rate faults at the reduced-solve site degrade every warm
        # solve to cold -- and the warm-equals-cold oracle stays clean.
        plan = faults.FaultPlan(
            seed=1, rate=1.0, sites=("lp.session.warm",)
        )
        with faults.chaos(plan):
            report = fuzz.run_fuzz(
                seed=3, cases=1, oracle_filter=["te.warm-equals-cold"],
                minimize=False,
            )
        assert report.ok, report.render()


# ----------------------------------------------------------------------
# Planted defect: catch, shrink deterministically, replay
# ----------------------------------------------------------------------
@pytest.fixture
def planted():
    oracles.register_planted_defect(replace=True)
    yield oracles.PLANTED_ORACLE
    oracles.unregister(oracles.PLANTED_ORACLE)


def _planted_sweep(store):
    return fuzz.run_fuzz(
        seed=SEED, cases=4, oracle_filter=[oracles.PLANTED_ORACLE],
        store=store,
    )


class TestPlantedDefect:
    def test_caught_shrunk_and_deterministic(self, planted, tmp_path):
        report_a = _planted_sweep(ArtifactStore(tmp_path / "a"))
        report_b = _planted_sweep(ArtifactStore(tmp_path / "b"))
        assert not report_a.ok
        failure = report_a.failures[0]
        assert failure.failure == "divergence"
        assert failure.shrink_attempts > 0
        before = sum(failure.sizes_before.values())
        after = sum(failure.sizes_after.values())
        assert after < before
        # Same seed window, independent runs and stores: byte-identical
        # minimized artifacts.
        assert canonical_payload(failure) == canonical_payload(
            report_b.failures[0]
        )

    def test_minimized_case_still_fails_and_replays(self, planted, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        report = _planted_sweep(store)
        failure = report.failures[0]
        assert failure.store_key in [k for k, _ in fuzz.list_failures(store)]
        outcome = fuzz.reproduce(store, failure.store_key)
        assert outcome.reproduced
        assert outcome.failure == "divergence"
        live = fuzz.reproduce_live(
            failure.seed, failure.case_index, failure.oracle
        )
        assert live.reproduced

    def test_reproduce_unknown_key_raises(self, tmp_path):
        with pytest.raises(KeyError):
            fuzz.reproduce(ArtifactStore(tmp_path / "s"), "fuzz/1/0/0/nope")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def run_cli(self, argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_clean_run_exits_zero(self, tmp_path):
        code, text = self.run_cli([
            "fuzz", "run", "--seed", str(SEED), "--cases", "1",
            "--oracle", "ap.vs-apkeep", "--store", str(tmp_path / "s"),
        ])
        assert code == 0
        assert "no failures" in text

    def test_oracle_list(self):
        code, text = self.run_cli(["fuzz", "run", "--oracle", "list"])
        assert code == 0
        assert "te.warm-equals-cold" in text

    def test_unknown_oracle_is_usage_error(self):
        code, text = self.run_cli(["fuzz", "run", "--oracle", "nosuch"])
        assert code == 2
        assert "unknown fuzz oracle" in text

    def test_planted_run_ls_repro_roundtrip(self, tmp_path):
        store_dir = str(tmp_path / "s")
        code, text = self.run_cli([
            "fuzz", "run", "--seed", str(SEED), "--cases", "4",
            "--plant-defect", "--oracle", oracles.PLANTED_ORACLE,
            "--store", store_dir,
        ])
        oracles.unregister(oracles.PLANTED_ORACLE)
        assert code == 1
        assert "FAIL" in text and "repro:" in text

        code, text = self.run_cli(["fuzz", "ls", "--store", store_dir])
        assert code == 0
        key = text.splitlines()[0].split()[0]
        assert key.startswith("fuzz/1/")

        # Replay in a registry without the planted oracle: the runner
        # re-registers it on demand, as a fresh process would need.
        code, text = self.run_cli([
            "fuzz", "repro", key, "--store", store_dir,
        ])
        oracles.unregister(oracles.PLANTED_ORACLE)
        assert code == 0
        assert "reproduced" in text

    def test_repro_without_key_or_triple_is_usage_error(self):
        code, text = self.run_cli(["fuzz", "repro"])
        assert code == 2


# ----------------------------------------------------------------------
# Bench registration
# ----------------------------------------------------------------------
class TestBench:
    def test_fuzz_workload_registered(self):
        from repro import bench

        bench.discover()
        specs = bench.select("fuzz.cases_per_second")
        assert len(specs) == 1
        assert specs[0].layer == "fuzz"
