"""Fuzzed cross-system equivalence: AP vs APKeep vs brute force.

The strongest correctness evidence in the suite: on *random* data planes
(arbitrary overlapping rules, random priorities and tie-breaks, random
ACLs), the batch verifier (AP), the incremental verifier (APKeep) and a
per-address brute-force forwarding walk must agree exactly.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ap import APVerifier
from repro.apkeep import APKeepVerifier
from repro.bdd.builder import new_engine
from repro.bdd.engine import BDD_FALSE
from repro.netmodel.datasets import random_dataset
from repro.netmodel.headerspace import HEADER_BITS
from repro.netmodel.rules import DROP_PORT, SELF_PORT

FUZZ_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def brute_force_reaches(dataset, src, dst, address):
    """Follow the forwarding tables one address at a time."""
    device = src
    visited = set()
    if not dataset.devices[src].acl_permits(address):
        return False
    while True:
        if device == dst:
            return True
        if device in visited:
            return False
        visited.add(device)
        port = dataset.devices[device].lookup(address)
        if port in (DROP_PORT, SELF_PORT):
            return False
        if port not in dataset.devices:
            return False
        if not dataset.devices[port].acl_permits(address):
            return False
        device = port


class TestFuzzedEquivalence:
    @FUZZ_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_nodes=st.integers(min_value=2, max_value=5),
        rules=st.integers(min_value=1, max_value=10),
        acls=st.sampled_from([0.0, 0.5]),
    )
    def test_ap_equals_apkeep(self, seed, num_nodes, rules, acls):
        dataset = random_dataset(
            num_nodes=num_nodes,
            rules_per_device=rules,
            seed=seed,
            acl_fraction=acls,
        )
        engine = new_engine("jdd")
        ap = APVerifier(dataset, engine=engine)
        apkeep = APKeepVerifier(dataset, engine=engine)
        assert apkeep.num_atoms_minimal == ap.num_atoms
        nodes = dataset.topology.nodes
        for src in nodes[:2]:
            for dst in nodes[-2:]:
                if src == dst:
                    continue
                want = ap.atomics.union_bdd(ap.reachable_atoms(src, dst).atoms)
                got = BDD_FALSE
                for atom in apkeep.reachable_atoms(src, dst):
                    got = engine.or_(got, apkeep.ppm.atoms[atom])
                assert got == want, f"{src}->{dst} differs (seed {seed})"

    @FUZZ_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_ap_matches_brute_force(self, seed):
        dataset = random_dataset(num_nodes=4, rules_per_device=8, seed=seed)
        verifier = APVerifier(dataset)
        nodes = dataset.topology.nodes
        src, dst = nodes[0], nodes[-1]
        result = verifier.reachable_atoms(src, dst)
        rng = random.Random(seed)
        for _ in range(40):
            address = rng.randrange(1 << HEADER_BITS)
            assignment = {
                i: bool((address >> (HEADER_BITS - 1 - i)) & 1)
                for i in range(HEADER_BITS)
            }
            in_atoms = any(
                verifier.engine.evaluate(verifier.atomics.atoms[a], assignment)
                for a in result.atoms
            )
            assert in_atoms == brute_force_reaches(dataset, src, dst, address), (
                f"address {address:#06x} disagrees (seed {seed})"
            )

    @FUZZ_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rules=st.integers(min_value=2, max_value=8),
    )
    def test_bfs_equals_path_enumeration_on_random_planes(self, seed, rules):
        dataset = random_dataset(num_nodes=4, rules_per_device=rules, seed=seed)
        verifier = APVerifier(dataset)
        nodes = dataset.topology.nodes
        for src, dst in [(nodes[0], nodes[-1]), (nodes[1], nodes[0])]:
            bfs = verifier.reachable_atoms(src, dst)
            enum = verifier.reachable_atoms_by_path_enumeration(src, dst)
            assert bfs.atoms == enum.atoms

    @FUZZ_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_incremental_equals_batch_after_updates(self, seed):
        """Insert extra random rules incrementally; a fresh batch build of
        the final state must agree with the incrementally maintained one."""
        from repro.netmodel.headerspace import Prefix
        from repro.netmodel.rules import ForwardingRule

        rng = random.Random(seed)
        dataset = random_dataset(num_nodes=3, rules_per_device=4, seed=seed)
        verifier = APKeepVerifier(dataset)
        final = dataset.copy()
        nodes = dataset.topology.nodes
        for _ in range(3):
            node = rng.choice(nodes)
            neighbors = dataset.topology.successors(node)
            port = rng.choice(neighbors + [DROP_PORT, SELF_PORT])
            length = rng.randint(0, HEADER_BITS)
            bits = rng.randrange(1 << length) if length else 0
            prefix = Prefix(bits << (HEADER_BITS - length), length)
            rule = ForwardingRule(prefix, port, rng.randint(0, 40))
            verifier.insert_rule(node, rule)
            final.devices[node].add_rule(rule)
        fresh = APKeepVerifier(final)
        assert verifier.num_atoms_minimal == fresh.num_atoms_minimal

    def test_random_dataset_validated(self):
        with pytest.raises(ValueError):
            random_dataset(num_nodes=1)
