"""Fuzzed cross-system equivalence, as thin wrappers over the oracles.

The strongest correctness evidence in the suite: on *random* instances
the batch verifier (AP), the incremental verifier (APKeep), a
per-address brute-force forwarding walk, both BDD engines, and every
registry TE solver must agree exactly.  The checks themselves live in
:mod:`repro.fuzz.oracles` -- one implementation shared by these tests
and the standing ``repro fuzz`` gate -- so each test here just walks a
slice of the deterministic case schedule through one named oracle.
"""

import pytest

from repro.fuzz import generators, oracles
from repro.netmodel.datasets import random_dataset

#: The schedule seed these wrappers pin; any failure replays with
#: ``repro fuzz repro --seed 1729 --case <index> --oracle <name>``.
SEED = 1729

DATAPLANE_ORACLES = sorted(
    spec.name for spec in oracles.specs_for_kind("dataplane")
)
TE_ORACLES = sorted(spec.name for spec in oracles.specs_for_kind("te"))
CAMPAIGN_ORACLES = sorted(
    spec.name for spec in oracles.specs_for_kind("campaign")
)

#: TE oracles solve a handful of LPs per case; keep their slice of the
#: schedule narrower than the cheap dataplane oracles'.  Campaign
#: oracles run whole (simulated) reproductions twice per case -- the
#: narrowest slice of all; deeper sweeps belong to ``repro fuzz``.
DATAPLANE_INDICES = range(6)
TE_INDICES = range(2)
CAMPAIGN_INDICES = range(1)


class TestFuzzedEquivalence:
    @pytest.mark.parametrize("oracle", DATAPLANE_ORACLES)
    @pytest.mark.parametrize("index", DATAPLANE_INDICES)
    def test_dataplane_oracles(self, oracle, index):
        case = generators.generate_case(SEED, index, "dataplane")
        oracles.run_oracle(oracle, case)

    @pytest.mark.parametrize("oracle", TE_ORACLES)
    @pytest.mark.parametrize("index", TE_INDICES)
    def test_te_oracles(self, oracle, index):
        case = generators.generate_case(SEED, index, "te")
        oracles.run_oracle(oracle, case)

    @pytest.mark.parametrize("oracle", CAMPAIGN_ORACLES)
    @pytest.mark.parametrize("index", CAMPAIGN_INDICES)
    def test_campaign_oracles(self, oracle, index):
        case = generators.generate_case(SEED, index, "campaign")
        oracles.run_oracle(oracle, case)

    def test_registry_covers_every_kind(self):
        assert DATAPLANE_ORACLES and TE_ORACLES and CAMPAIGN_ORACLES
        assert set(
            DATAPLANE_ORACLES + TE_ORACLES + CAMPAIGN_ORACLES
        ) == set(oracles.oracle_names())

    def test_random_dataset_validated(self):
        with pytest.raises(ValueError):
            random_dataset(num_nodes=1)
