"""Tests for prefixes and the brute-force header-space reference."""

import pytest

from repro.netmodel.headerspace import (
    HEADER_BITS,
    HeaderSpace,
    Prefix,
    split_address_space,
)


class TestPrefix:
    def test_full_prefix_matches_everything(self):
        full = Prefix.full()
        assert full.num_addresses() == 1 << HEADER_BITS
        assert full.contains_address(0)
        assert full.contains_address((1 << HEADER_BITS) - 1)

    def test_host_prefix_matches_one(self):
        host = Prefix.host(42)
        assert host.num_addresses() == 1
        assert host.contains_address(42)
        assert not host.contains_address(43)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            Prefix(0, HEADER_BITS + 1)

    def test_bits_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            Prefix(0x0001, 4)  # low bits set but /4

    def test_mask(self):
        assert Prefix(0, 0).mask == 0
        assert Prefix(0, HEADER_BITS).mask == (1 << HEADER_BITS) - 1
        assert Prefix(0x8000, 1).mask == 0x8000

    def test_covers(self):
        outer = Prefix(0x1000, 4)
        inner = Prefix(0x1200, 8)
        assert outer.covers(inner)
        assert not inner.covers(outer)
        assert outer.covers(outer)

    def test_overlaps_only_by_nesting(self):
        a = Prefix(0x1000, 4)
        b = Prefix(0x2000, 4)
        assert not a.overlaps(b)
        assert a.overlaps(Prefix(0x1200, 8))

    def test_bdd_literals_msb_first(self):
        prefix = Prefix(0x8000, 2)  # bits 10...
        literals = list(prefix.bdd_literals())
        assert literals == [(0, True), (1, False)]

    def test_str(self):
        assert str(Prefix(0x1200, 8)) == "0x1200/8"


class TestHeaderSpace:
    def test_from_prefix_size(self):
        space = HeaderSpace.from_prefix(Prefix(0x1000, 4))
        assert len(space) == 1 << (HEADER_BITS - 4)

    def test_algebra(self):
        a = HeaderSpace.from_prefix(Prefix(0x0000, 1))
        b = HeaderSpace.from_prefix(Prefix(0x0000, 2))
        assert b.intersect(a) == b
        assert a.union(b) == a
        assert len(a.minus(b)) == len(a) - len(b)

    def test_complement(self):
        a = HeaderSpace.from_prefix(Prefix(0x0000, 1))
        assert a.union(a.complement()) == HeaderSpace.all()
        assert a.intersect(a.complement()).is_empty

    def test_empty(self):
        assert HeaderSpace.empty().is_empty
        assert not HeaderSpace.all().is_empty


class TestSplitAddressSpace:
    def test_exact_power_of_two(self):
        prefixes = split_address_space(4)
        assert len(prefixes) == 4
        assert all(p.length == 2 for p in prefixes)
        total = sum(p.num_addresses() for p in prefixes)
        assert total == 1 << HEADER_BITS

    def test_rounds_up(self):
        prefixes = split_address_space(5)
        assert len(prefixes) == 5
        assert all(p.length == 3 for p in prefixes)

    def test_disjoint(self):
        prefixes = split_address_space(9)
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1:]:
                assert not a.overlaps(b)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            split_address_space(0)
        with pytest.raises(ValueError):
            split_address_space(1 << (HEADER_BITS + 1))
