"""Tests for JSON I/O, snapshot diffing, and the CSV reporting layer."""

import csv
import io

import pytest

from repro.ap.diff import diff_snapshots
from repro.netmodel.datasets import (
    build_verification_dataset,
    inject_blackhole,
    inject_loop,
)
from repro.netmodel.io import (
    dataset_from_dict,
    dataset_to_dict,
    load_json,
    save_json,
    topology_from_dict,
    topology_to_dict,
    traffic_from_dict,
    traffic_to_dict,
)
from repro.netmodel.instances import make_te_instance
from repro.netmodel.topozoo import make_topology
from repro.netmodel.traffic import TrafficMatrix


class TestTopologyIO:
    def test_round_trip(self):
        topology = make_topology("B4")
        recovered = topology_from_dict(topology_to_dict(topology))
        assert recovered.nodes == topology.nodes
        assert [
            (l.src, l.dst, l.capacity, l.fiber_id) for l in recovered.links()
        ] == [(l.src, l.dst, l.capacity, l.fiber_id) for l in topology.links()]

    def test_file_round_trip(self, tmp_path):
        topology = make_topology("Internet2")
        path = str(tmp_path / "topo.json")
        save_json(topology, path)
        recovered = load_json(path)
        assert recovered.num_nodes == topology.num_nodes
        assert recovered.total_capacity() == topology.total_capacity()


class TestTrafficIO:
    def test_round_trip(self):
        instance = make_te_instance("B4", max_commodities=30)
        recovered = traffic_from_dict(traffic_to_dict(instance.traffic))
        assert recovered.demands == instance.traffic.demands

    def test_file_round_trip(self, tmp_path):
        matrix = TrafficMatrix({("a", "b"): 5.5, ("b", "a"): 2.0})
        path = str(tmp_path / "tm.json")
        save_json(matrix, path)
        assert load_json(path).demands == matrix.demands


class TestDatasetIO:
    def test_round_trip_preserves_semantics(self, stanford):
        recovered = dataset_from_dict(dataset_to_dict(stanford))
        assert recovered.total_rules == stanford.total_rules
        # Behavioural equivalence: same lookups on sampled addresses.
        import random

        random.seed(9)
        for _ in range(100):
            node = random.choice(stanford.topology.nodes)
            address = random.randrange(1 << 16)
            assert (
                recovered.devices[node].lookup(address)
                == stanford.devices[node].lookup(address)
            )
            assert (
                recovered.devices[node].acl_permits(address)
                == stanford.devices[node].acl_permits(address)
            )

    def test_verifier_agrees_after_round_trip(self, internet2):
        from repro.ap import APVerifier

        recovered = dataset_from_dict(dataset_to_dict(internet2))
        assert APVerifier(recovered).num_atoms == APVerifier(internet2).num_atoms

    def test_save_rejects_unknown_type(self, tmp_path):
        with pytest.raises(TypeError):
            save_json(object(), str(tmp_path / "x.json"))

    def test_load_rejects_unknown_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"type": "mystery", "data": {}}')
        with pytest.raises(ValueError):
            load_json(str(path))


class TestSnapshotDiff:
    def test_identical_snapshots_unchanged(self, internet2):
        report = diff_snapshots(internet2, internet2.copy())
        assert report.unchanged
        assert report.total_lost() == 0
        assert report.total_gained() == 0

    def test_blackhole_shows_as_losses(self, internet2):
        perturbed, device = inject_blackhole(internet2, seed=3)
        report = diff_snapshots(internet2, perturbed)
        assert not report.unchanged
        assert report.total_lost() > 0
        assert report.total_gained() == 0

    def test_loop_shows_as_losses(self, internet2):
        perturbed, _ = inject_loop(internet2, seed=3)
        report = diff_snapshots(internet2, perturbed)
        # Packets caught in the loop no longer arrive anywhere.
        assert report.total_lost() > 0

    def test_pair_restriction(self, internet2):
        nodes = internet2.topology.nodes
        report = diff_snapshots(
            internet2, internet2.copy(), pairs=[(nodes[0], nodes[1])]
        )
        assert report.pairs_compared == 1

    def test_mismatched_nodes_rejected(self, internet2):
        other = build_verification_dataset("Stanford")
        with pytest.raises(ValueError):
            diff_snapshots(internet2, other)

    def test_render_mentions_counts(self, internet2):
        perturbed, _ = inject_blackhole(internet2, seed=3)
        text = diff_snapshots(internet2, perturbed).render(limit=2)
        assert "pairs changed" in text


class TestReporting:
    def test_export_fig1(self, tmp_path):
        from repro.reporting import export_fig1

        rows = export_fig1(str(tmp_path))
        assert rows[0] == ["venue", "year", "open_source", "total", "fraction"]
        assert len(rows) == 21  # header + 2 venues x 10 years
        with open(tmp_path / "fig1_opensource.csv") as handle:
            parsed = list(csv.reader(handle))
        assert len(parsed) == 21

    def test_export_fig2(self, tmp_path):
        from repro.reporting import export_fig2

        rows = export_fig2(str(tmp_path))
        metrics = {row[0] for row in rows[1:]}
        assert "frac_compared_ge2" in metrics

    def test_export_exp_b(self, tmp_path):
        from repro.reporting import export_exp_b

        rows = export_exp_b(str(tmp_path))
        assert rows[0] == ["instance", "none", "paper", "ticket", "code"]
        for record in rows[1:]:
            assert record[1] <= record[2] <= record[4]

    def test_export_exp_cd(self, tmp_path):
        from repro.reporting import export_exp_cd

        rows = export_exp_cd(str(tmp_path))
        for record in rows[1:]:
            assert record[2] == record[3]  # AP atoms == APKeep atoms

    def test_cli_export(self, tmp_path):
        from repro.cli import main

        out = io.StringIO()
        code = main(["export", "--out", str(tmp_path / "res")], out=out)
        assert code == 0
        assert "fig5_loc.csv" in out.getvalue()

    def test_cli_diff(self):
        from repro.cli import main

        out = io.StringIO()
        code = main(["diff", "Internet2", "--inject", "blackhole"], out=out)
        assert code == 0
        assert "pairs changed" in out.getvalue()
