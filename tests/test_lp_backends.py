"""Tests for the LP text round trip and backend personalities."""

import pytest

from repro.lp import FastLPBackend, Model, SlowLPBackend, get_backend
from repro.lp.backends import parse_lp_text, write_lp_text


def make_model():
    model = Model("roundtrip")
    x = model.add_var(name="x", upper=4)
    y = model.add_var(name="y", lower=1, upper=3)
    z = model.add_var(name="z")
    model.add_constraint(x + y <= 5, name="cap")
    model.add_constraint(2 * x - y >= -1, name="mix")
    model.add_constraint((y + z).equals(3.0), name="fix")
    model.maximize(x + 2 * y + 0.5 * z)
    return model


class TestLPText:
    def test_round_trip_preserves_shape(self):
        model = make_model()
        parsed = parse_lp_text(write_lp_text(model))
        assert parsed.num_vars == model.num_vars
        assert parsed.num_constraints == model.num_constraints
        assert parsed.is_maximize == model.is_maximize

    def test_round_trip_preserves_optimum(self):
        model = make_model()
        parsed = parse_lp_text(write_lp_text(model))
        original = model.solve()
        recovered = parsed.solve()
        assert recovered.objective == pytest.approx(original.objective)

    def test_round_trip_preserves_bounds(self):
        model = make_model()
        parsed = parse_lp_text(write_lp_text(model))
        assert parsed.variables[1].lower == 1.0
        assert parsed.variables[1].upper == 3.0
        assert parsed.variables[2].upper == float("inf")

    def test_double_round_trip_stable(self):
        model = make_model()
        once = write_lp_text(parse_lp_text(write_lp_text(model)))
        twice = write_lp_text(parse_lp_text(once))
        assert once == twice

    def test_minimize_round_trip(self):
        model = Model("m")
        x = model.add_var(name="x", lower=1, upper=9)
        model.minimize(3 * x)
        parsed = parse_lp_text(write_lp_text(model))
        assert parsed.solve().objective == pytest.approx(3.0)


class TestBackends:
    def test_get_backend_aliases(self):
        assert isinstance(get_backend("gurobi"), FastLPBackend)
        assert isinstance(get_backend("pulp"), SlowLPBackend)
        assert isinstance(get_backend("fast"), FastLPBackend)
        assert isinstance(get_backend("slow"), SlowLPBackend)

    def test_get_backend_unknown(self):
        with pytest.raises(KeyError):
            get_backend("cplex")

    def test_slow_backend_round_trips_validated(self):
        with pytest.raises(ValueError):
            SlowLPBackend(round_trips=0)

    def test_slow_backend_is_slower_on_nontrivial_model(self):
        def build():
            model = Model("perf")
            variables = model.add_vars(300, upper=10)
            for i in range(0, 300, 3):
                model.add_constraint(
                    variables[i] + variables[i + 1] + variables[i + 2] <= 12
                )
            from repro.lp import LinExpr

            model.maximize(LinExpr.sum_of(variables))
            return model

        fast_result = build().solve(FastLPBackend())
        slow_result = build().solve(SlowLPBackend())
        assert fast_result.objective == pytest.approx(slow_result.objective)
        assert slow_result.solve_seconds > fast_result.solve_seconds

    def test_backend_names_recorded(self):
        model = Model("n")
        x = model.add_var(upper=1)
        model.maximize(x)
        assert model.solve(FastLPBackend()).backend_name == "fast-highs"
        model2 = Model("n2")
        x2 = model2.add_var(upper=1)
        model2.maximize(x2)
        assert model2.solve(SlowLPBackend()).backend_name == "slow-pulp"


class TestObjectiveConstantRoundTrip:
    """Regression: the LP text writer used to drop the objective's
    constant term, so the slow (round-tripping) backend reported
    offset-objective optima shifted by the constant."""

    def make_offset_model(self):
        model = Model("offset")
        x = model.add_var(name="x", upper=4)
        y = model.add_var(name="y", upper=3)
        model.add_constraint(x + y <= 5, name="cap")
        model.maximize(x + 2 * y + 5.0)
        return model

    def test_writer_emits_objective_constant(self):
        text = write_lp_text(self.make_offset_model())
        parsed = parse_lp_text(text)
        assert parsed.objective_expr.constant == pytest.approx(5.0)

    def test_round_trip_preserves_offset_optimum(self):
        model = self.make_offset_model()
        original = model.solve(FastLPBackend())
        recovered = parse_lp_text(write_lp_text(model)).solve(FastLPBackend())
        # x=2, y=3 maximises x + 2y under x+y<=5 -> 8, plus the offset.
        assert original.objective == pytest.approx(8.0 + 5.0)
        assert recovered.objective == pytest.approx(original.objective)

    def test_slow_backend_agrees_on_offset_objective(self):
        fast = self.make_offset_model().solve(FastLPBackend())
        slow = self.make_offset_model().solve(SlowLPBackend())
        assert slow.objective == pytest.approx(fast.objective)

    def test_negative_constant_round_trips(self):
        model = Model("neg")
        x = model.add_var(name="x", upper=2)
        model.minimize(3 * x - 7.5)
        parsed = parse_lp_text(write_lp_text(model))
        assert parsed.solve().objective == pytest.approx(-7.5)


class TestSlowBackendTiming:
    """Regression: ``lp.solve_seconds{backend="slow-pulp"}`` used to
    observe only the final linprog call, not the simulated file
    round trips that dominate the slow personality's latency."""

    def test_solve_seconds_histogram_observes_round_trip_time(self):
        from repro import obs

        obs.metrics.reset()
        model = Model("timing")
        variables = model.add_vars(60, upper=5)
        for i in range(0, 60, 3):
            model.add_constraint(
                variables[i] + variables[i + 1] + variables[i + 2] <= 9
            )
        from repro.lp import LinExpr

        model.maximize(LinExpr.sum_of(variables))
        result = model.solve(SlowLPBackend())
        histogram = obs.metrics.snapshot()[
            'lp.solve_seconds{backend="slow-pulp"}'
        ]
        assert histogram["count"] == 1
        # The observed sample is the full round-trip duration: it must
        # essentially match the result's own wall-clock accounting.
        assert histogram["sum"] == pytest.approx(
            result.solve_seconds, rel=0.2
        )
