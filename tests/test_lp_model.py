"""Unit tests for the LP modelling layer."""

import math

import pytest

from repro.lp import (
    ConstraintSense,
    FastLPBackend,
    InfeasibleError,
    LinExpr,
    Model,
    SlowLPBackend,
    SolveStatus,
    Variable,
)


def build_toy():
    model = Model("toy")
    x = model.add_var(name="x", upper=4)
    y = model.add_var(name="y", upper=3)
    model.add_constraint(x + y <= 5, name="cap")
    model.maximize(x + 2 * y)
    return model, x, y


class TestLinExpr:
    def test_variable_addition(self):
        model = Model()
        x, y = model.add_vars(2)
        expr = x + y
        assert expr.coefs == {0: 1.0, 1: 1.0}
        assert expr.constant == 0.0

    def test_scalar_multiplication(self):
        model = Model()
        x = model.add_var()
        expr = 3 * x + 1.5
        assert expr.coefs == {0: 3.0}
        assert expr.constant == 1.5

    def test_subtraction_cancels(self):
        model = Model()
        x = model.add_var()
        expr = (x + 2.0) - x
        assert expr.coefs[0] == 0.0
        assert expr.constant == 2.0

    def test_negation(self):
        model = Model()
        x = model.add_var()
        expr = -(2 * x + 1)
        assert expr.coefs == {0: -2.0}
        assert expr.constant == -1.0

    def test_rsub(self):
        model = Model()
        x = model.add_var()
        expr = 5 - x
        assert expr.coefs == {0: -1.0}
        assert expr.constant == 5.0

    def test_sum_of_is_linear_time_and_correct(self):
        model = Model()
        variables = model.add_vars(100)
        expr = LinExpr.sum_of(variables)
        assert len(expr.coefs) == 100
        assert all(coef == 1.0 for coef in expr.coefs.values())

    def test_iadd_mutates_in_place(self):
        model = Model()
        x, y = model.add_vars(2)
        expr = LinExpr()
        alias = expr
        expr += x
        expr += y
        assert alias.coefs == {0: 1.0, 1: 1.0}

    def test_value_evaluation(self):
        model = Model()
        x, y = model.add_vars(2)
        expr = 2 * x + 3 * y + 1
        assert expr.value([2.0, 1.0]) == pytest.approx(8.0)


class TestModel:
    def test_add_var_validates_bounds(self):
        model = Model()
        with pytest.raises(ValueError):
            model.add_var(lower=2.0, upper=1.0)

    def test_add_constraint_rejects_non_comparison(self):
        model = Model()
        x = model.add_var()
        with pytest.raises(TypeError):
            model.add_constraint(x + 1)  # not a comparison

    def test_constraint_senses(self):
        model = Model()
        x = model.add_var()
        le = model.add_constraint(x <= 1)
        ge = model.add_constraint(x >= 0)
        eq = model.add_constraint((x + 0).equals(0.5))
        assert le.sense is ConstraintSense.LE
        assert ge.sense is ConstraintSense.GE
        assert eq.sense is ConstraintSense.EQ

    def test_solve_optimal(self):
        model, x, y = build_toy()
        result = model.solve()
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(8.0)
        assert result.value_of(x) == pytest.approx(2.0)
        assert result.value_of(y) == pytest.approx(3.0)

    def test_minimize(self):
        model = Model()
        x = model.add_var(lower=1.0, upper=4.0)
        model.minimize(2 * x)
        result = model.solve()
        assert result.objective == pytest.approx(2.0)

    def test_infeasible_status(self):
        model = Model()
        x = model.add_var(upper=1.0)
        model.add_constraint(x >= 2.0)
        model.maximize(x)
        result = model.solve()
        assert result.status is SolveStatus.INFEASIBLE

    def test_infeasible_raises_when_asked(self):
        model = Model()
        x = model.add_var(upper=1.0)
        model.add_constraint(x >= 2.0)
        model.maximize(x)
        with pytest.raises(InfeasibleError):
            model.solve(raise_on_infeasible=True)

    def test_unbounded_status(self):
        model = Model()
        x = model.add_var()
        model.maximize(x)
        result = model.solve()
        assert result.status in (SolveStatus.UNBOUNDED, SolveStatus.ERROR)

    def test_equality_constraint_solved(self):
        model = Model()
        x = model.add_var(upper=10)
        y = model.add_var(upper=10)
        model.add_constraint((x + y).equals(7.0))
        model.maximize(x)
        result = model.solve()
        assert result.value_of(x) == pytest.approx(7.0)

    def test_objective_constant_carried(self):
        model = Model()
        x = model.add_var(upper=1.0)
        model.maximize(x + 10.0)
        result = model.solve()
        assert result.objective == pytest.approx(11.0)

    def test_empty_model(self):
        model = Model()
        result = model.solve()
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == 0.0

    def test_both_backends_agree(self):
        model1, *_ = build_toy()
        model2, *_ = build_toy()
        fast = model1.solve(FastLPBackend())
        slow = model2.solve(SlowLPBackend())
        assert fast.objective == pytest.approx(slow.objective)
