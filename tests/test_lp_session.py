"""Tests for the incremental LP solve-session tier.

Covers the warm-start correctness contract (a warm session solve is
*exactly* as optimal as a cold one, to LP tolerance), the decomposed
backend's agreement with the exact fast path, the never-mask rules for
INFEASIBLE/UNBOUNDED, the accuracy gate, and the warm sweep plumbing
(fewer full solves, deterministic parallel chunking, fail-soft
collection).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.lp import (
    DecomposedLPBackend,
    FastLPBackend,
    LinExpr,
    Model,
    SolveSession,
    WarmStartSession,
    get_backend,
    lp_discrepancy_gate,
)
from repro.lp.model import SolveResult, SolveStatus
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix
from repro.parallel import TaskFailure
from repro.resilience import FaultPlan, chaos
from repro.te import registry
from repro.te.demandscale import _chunk_indices, max_feasible_scale, scale_sweep

FUZZ_SETTINGS = dict(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def knapsack_model(name="knap", rhs=12.0, num_vars=40):
    """A small packing LP with a known-nontrivial support."""
    model = Model(name)
    variables = model.add_vars(num_vars, upper=5.0)
    for start in range(0, num_vars, 4):
        model.add_constraint(
            LinExpr.sum_of(variables[start:start + 4]) <= rhs
        )
    model.maximize(LinExpr.sum_of(
        (1.0 + 0.01 * i) * v for i, v in enumerate(variables)
    ))
    return model


def infeasible_model():
    model = Model("infeasible")
    x = model.add_var(name="x", upper=1.0)
    model.add_constraint(x >= 2.0)
    model.maximize(x)
    return model


def unbounded_model():
    model = Model("unbounded")
    x = model.add_var(name="x")
    model.maximize(x)
    return model


@st.composite
def random_instance(draw):
    """Small connected topology (ring + chords) with integer demands."""
    n = draw(st.integers(min_value=4, max_value=6))
    nodes = [f"n{i}" for i in range(n)]
    topo = Topology("random")
    for node in nodes:
        topo.add_node(node)
    for i in range(n):
        cap = draw(st.integers(min_value=1, max_value=20))
        topo.add_bidi_link(nodes[i], nodes[(i + 1) % n], float(cap))
    chords = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=3,
    ))
    for a, b in chords:
        if a != b and not topo.has_link(nodes[a], nodes[b]):
            cap = draw(st.integers(min_value=1, max_value=20))
            topo.add_bidi_link(nodes[a], nodes[b], float(cap))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=1, max_size=5,
    ))
    demands = {}
    for a, b in pairs:
        if a != b:
            demands[(nodes[a], nodes[b])] = float(
                draw(st.integers(min_value=1, max_value=15))
            )
    return topo, TrafficMatrix(demands)


class TestBaseSession:
    def test_base_session_solves_cold(self):
        session = FastLPBackend().session()
        # FastLPBackend advertises warm starts, so .session() is warm.
        assert isinstance(session, WarmStartSession)

    def test_plain_session_counts_cold_solves(self):
        session = SolveSession(FastLPBackend())
        first = session.solve(knapsack_model())
        second = session.solve(knapsack_model(rhs=10.0))
        assert first.status is SolveStatus.OPTIMAL
        assert second.status is SolveStatus.OPTIMAL
        assert session.stats.cold_solves == 2
        assert session.stats.warm_solves == 0
        assert session.last is second

    def test_every_backend_hands_out_a_session(self):
        for name in ("fast", "slow", "fallback", "decomposed"):
            session = get_backend(name).session()
            result = session.solve(knapsack_model())
            assert result.status is SolveStatus.OPTIMAL


class TestWarmStartSession:
    def test_warm_chain_matches_cold(self):
        cold = FastLPBackend()
        session = WarmStartSession(FastLPBackend())
        for rhs in (12.0, 11.0, 10.0, 9.5, 13.0):
            model = knapsack_model(rhs=rhs)
            warm = session.solve(model)
            reference = cold.solve(knapsack_model(rhs=rhs))
            assert warm.status is SolveStatus.OPTIMAL
            assert warm.objective == pytest.approx(
                reference.objective, rel=1e-7, abs=1e-7
            )
        assert session.stats.cold_solves == 1
        assert session.stats.warm_solves == 4
        assert session.stats.fallbacks == 0

    def test_explicit_warm_start_argument_wins(self):
        session = WarmStartSession(FastLPBackend())
        seed = FastLPBackend().solve(knapsack_model())
        result = session.solve(knapsack_model(rhs=11.0), warm_start=seed)
        assert result.status is SolveStatus.OPTIMAL
        assert session.stats.warm_solves == 1

    def test_shape_change_falls_back_to_cold(self):
        session = WarmStartSession(FastLPBackend())
        session.solve(knapsack_model(num_vars=40))
        session.solve(knapsack_model(num_vars=44))
        assert session.stats.cold_solves == 2
        assert session.stats.warm_solves == 0

    def test_warm_infeasible_is_reported_not_masked(self):
        session = WarmStartSession(FastLPBackend())
        session.solve(knapsack_model(num_vars=1))
        model = Model("infeasible")
        x = model.add_var(name="x", upper=1.0)
        model.add_constraint(x >= 2.0)
        model.maximize(x)
        result = session.solve(model)
        assert result.status is SolveStatus.INFEASIBLE

    def test_warm_unbounded_is_reported(self):
        session = WarmStartSession(FastLPBackend())
        model = Model("seed")
        x = model.add_var(name="x", upper=3.0)
        model.maximize(x)
        session.solve(model)
        result = session.solve(unbounded_model())
        assert result.status is SolveStatus.UNBOUNDED

    def test_warm_metrics_never_touch_lp_solves(self):
        obs.metrics.reset()
        session = WarmStartSession(FastLPBackend())
        session.solve(knapsack_model())
        for rhs in (11.0, 10.0):
            session.solve(knapsack_model(rhs=rhs))
        snapshot = obs.metrics.snapshot()
        assert snapshot["lp.solves"]["value"] == 1
        assert snapshot["lp.warm_starts"]["value"] == 2
        assert snapshot["lp.reduced_solves"]["value"] >= 2

    def test_accumulated_support_resets_on_cold(self):
        session = WarmStartSession(FastLPBackend())
        session.solve(knapsack_model())
        session.solve(knapsack_model(rhs=11.0))
        assert session._accumulated is not None
        session.solve(knapsack_model(num_vars=48))  # shape change -> cold
        assert session._accumulated is None

    def test_warm_fault_falls_back_to_cold_never_masks(self):
        # Full-rate chaos at the reduced-solve site: every warm attempt
        # fails, every solve degrades to cold, results stay exact.
        cold = FastLPBackend()
        session = WarmStartSession(FastLPBackend())
        plan = FaultPlan(seed=1, rate=1.0, sites=("lp.session.warm",))
        with chaos(plan):
            for rhs in (12.0, 11.0, 10.0):
                warm = session.solve(knapsack_model(rhs=rhs))
                reference = cold.solve(knapsack_model(rhs=rhs))
                assert warm.status is SolveStatus.OPTIMAL
                assert warm.objective == pytest.approx(
                    reference.objective, rel=1e-7, abs=1e-7
                )
        # warm_solves counts *attempts*: under full-rate chaos every
        # attempt fell back, so attempts == fallbacks and every solve
        # also ran cold.
        assert session.stats.fallbacks == 2  # every non-first solve
        assert session.stats.warm_solves == session.stats.fallbacks
        assert session.stats.cold_solves == 3

    def test_warm_fault_site_counts_session_faults(self):
        obs.metrics.reset()
        session = WarmStartSession(FastLPBackend())
        plan = FaultPlan(seed=1, rate=1.0, sites=("lp.session.warm",))
        with chaos(plan):
            session.solve(knapsack_model())
            session.solve(knapsack_model(rhs=11.0))
        snapshot = obs.metrics.snapshot()
        assert snapshot["lp.session.faults"]["value"] >= 1
        assert snapshot["lp.warm_fallbacks"]["value"] >= 1


class TestDecomposedBackend:
    def test_matches_exact_backend(self):
        fast = FastLPBackend()
        decomposed = DecomposedLPBackend()
        for rhs in (12.0, 9.0, 15.0):
            model = knapsack_model(rhs=rhs)
            exact = fast.solve(knapsack_model(rhs=rhs))
            reduced = decomposed.solve(model)
            assert reduced.status is SolveStatus.OPTIMAL
            assert reduced.objective == pytest.approx(
                exact.objective, rel=1e-7, abs=1e-7
            )
            assert reduced.backend_name == "decomposed"

    def test_infeasible_never_invented_or_masked(self):
        result = DecomposedLPBackend().solve(infeasible_model())
        assert result.status is SolveStatus.INFEASIBLE

    def test_unbounded_reported(self):
        model = Model("unbounded-wide")
        variables = model.add_vars(64, upper=1.0)
        free = model.add_var(name="free")
        model.maximize(LinExpr.sum_of(variables) + free)
        result = DecomposedLPBackend().solve(model)
        assert result.status is SolveStatus.UNBOUNDED

    def test_core_fraction_validated(self):
        with pytest.raises(ValueError):
            DecomposedLPBackend(core_fraction=0.0)
        with pytest.raises(ValueError):
            DecomposedLPBackend(core_fraction=1.5)

    def test_approximate_flag_follows_tolerance(self):
        assert not DecomposedLPBackend().approximate
        assert DecomposedLPBackend(convergence_tolerance=1e-3).approximate

    def test_registered_with_get_backend(self):
        for alias in ("decomposed", "gasplan", "reduced"):
            assert isinstance(get_backend(alias), DecomposedLPBackend)

    def test_tiny_model_falls_through_to_full_solve(self):
        # core covers everything -> plain base solve, still correct.
        model = Model("tiny")
        x = model.add_var(name="x", upper=2.0)
        model.maximize(x)
        result = DecomposedLPBackend(min_core=32).solve(model)
        assert result.objective == pytest.approx(2.0)

    def test_warm_fault_degrades_to_full_solve(self):
        # The decomposed reduced solve shares the lp.session.warm fault
        # site: under chaos it falls back to the full model and the
        # answer still matches the exact backend.
        backend = DecomposedLPBackend(min_core=4, core_fraction=0.25)
        plan = FaultPlan(seed=1, rate=1.0, sites=("lp.session.warm",))
        with chaos(plan):
            reduced = backend.solve(knapsack_model())
        exact = FastLPBackend().solve(knapsack_model())
        assert reduced.status is SolveStatus.OPTIMAL
        assert reduced.objective == pytest.approx(
            exact.objective, rel=1e-7, abs=1e-7
        )


class TestDiscrepancyGate:
    def test_clean_on_honest_backend(self):
        models = [knapsack_model(rhs=rhs) for rhs in (12.0, 9.0)]
        report = lp_discrepancy_gate(models, DecomposedLPBackend())
        assert report.clean
        assert report.instances_analyzed == 2
        assert len(report.cases) == 2

    def test_flags_objective_gap(self):
        class Liar(FastLPBackend):
            name = "liar"

            def solve(self, model):
                result = super().solve(model)
                result.objective *= 0.5
                return result

        report = lp_discrepancy_gate([knapsack_model()], Liar())
        assert not report.clean
        assert report.discrepancies[0].kind == "objective-gap"

    def test_flags_status_mismatch(self):
        class Masker(FastLPBackend):
            name = "masker"

            def solve(self, model):
                return SolveResult(
                    status=SolveStatus.OPTIMAL,
                    objective=0.0,
                    values=[0.0] * model.num_vars,
                    backend_name=self.name,
                )

        report = lp_discrepancy_gate([infeasible_model()], Masker())
        assert not report.clean
        assert report.discrepancies[0].kind == "result-mismatch"


class TestWarmSolversProperty:
    """Satellite: every warm-capable registry solver, fuzzed.

    A warm chain over scaled copies of a random instance must report the
    same status as the cold solver at every point.  Solvers whose
    capabilities declare ``warm_start_exact`` must also match the cold
    objective to LP tolerance; the rest (ncflow -- see
    :class:`TestNcflowWarmDivergence` for a pinned falsifying instance)
    get the documented relative bound
    :data:`repro.te.registry.WARM_APPROX_RELATIVE_BOUND` instead.
    """

    @settings(**FUZZ_SETTINGS)
    @given(random_instance())
    def test_warm_solve_matches_cold_for_every_warm_solver(self, instance):
        topo, traffic = instance
        warm_names = [
            name for name in registry.solver_names()
            if registry.get_spec(name).capabilities.supports_warm_start
        ]
        assert warm_names  # the registry must advertise warm solvers
        for name in warm_names:
            exact = registry.get_spec(name).capabilities.warm_start_exact
            warm_solver = registry.make_solver(name, warm=True)
            cold_solver = registry.make_solver(name)
            for scale in (0.5, 1.0, 1.7):
                scaled = traffic.scaled(scale)
                warm = warm_solver.solve(topo, scaled)
                cold = cold_solver.solve(topo, scaled)
                assert warm.status == cold.status, name
                if exact:
                    assert warm.objective == pytest.approx(
                        cold.objective, rel=1e-6, abs=1e-6
                    ), f"{name} diverged at scale {scale}"
                else:
                    denom = max(abs(cold.objective), 1e-9)
                    gap = abs(warm.objective - cold.objective) / denom
                    assert gap <= registry.WARM_APPROX_RELATIVE_BOUND, (
                        f"{name} warm gap {gap:.4%} exceeds approx bound "
                        f"at scale {scale}"
                    )


class TestNcflowWarmDivergence:
    """Regression: ncflow warm starts are *not* exact (ROADMAP item).

    ncflow decomposes per-cluster and reuses the previous partition's
    flow split as the warm seed; after a demand rescale the reused split
    can lock in a slightly suboptimal inter-cluster allocation, so the
    warm chain may land strictly below the cold optimum.  This instance
    (found by a seeded random search, seed 116) pins one such
    divergence: warm 46.5 vs cold ~46.6667 at scale 1.7 -- a ~0.36%
    relative gap.  The contract is therefore approximation, not
    equality: status must match and the gap must stay within
    :data:`repro.te.registry.WARM_APPROX_RELATIVE_BOUND`, which is what
    ``warm_start_exact=False`` in the registry now encodes.
    """

    def _instance(self):
        topo = Topology("ncflow-warm-divergence")
        for i in range(6):
            topo.add_node(f"n{i}")
        links = [
            ("n0", "n1", 18), ("n1", "n2", 15), ("n2", "n3", 3),
            ("n3", "n4", 11), ("n4", "n5", 2), ("n5", "n0", 18),
            ("n3", "n0", 13), ("n5", "n3", 19),
        ]
        for src, dst, cap in links:
            topo.add_bidi_link(src, dst, float(cap))
        traffic = TrafficMatrix({
            ("n5", "n3"): 10.0, ("n5", "n2"): 14.0, ("n3", "n4"): 12.0,
        })
        return topo, traffic

    def test_registry_declares_ncflow_warm_approximate(self):
        capabilities = registry.get_spec("ncflow").capabilities
        assert capabilities.supports_warm_start
        assert not capabilities.warm_start_exact
        assert "warm-approx" in capabilities.summary()

    def test_pinned_instance_diverges_but_stays_within_bound(self):
        topo, traffic = self._instance()
        warm_solver = registry.make_solver("ncflow", warm=True)
        cold_solver = registry.make_solver("ncflow")
        max_gap = 0.0
        for scale in (0.5, 1.0, 1.7):
            scaled = traffic.scaled(scale)
            warm = warm_solver.solve(topo, scaled)
            cold = cold_solver.solve(topo, scaled)
            assert warm.status == cold.status
            denom = max(abs(cold.objective), 1e-9)
            gap = abs(warm.objective - cold.objective) / denom
            assert gap <= registry.WARM_APPROX_RELATIVE_BOUND
            max_gap = max(max_gap, gap)
        # The falsifying point: the warm chain genuinely diverges here,
        # which is why exact warm==cold had to be replaced by a bound.
        assert max_gap > 1e-6


class TestChunking:
    def test_chunks_cover_range_in_order(self):
        for count in (1, 5, 8, 13):
            for workers in (1, 2, 3, 8, 20):
                chunks = _chunk_indices(count, workers)
                flattened = [i for chunk in chunks for i in chunk]
                assert flattened == list(range(count))
                assert len(chunks) == min(max(1, workers), count)
                sizes = [len(chunk) for chunk in chunks]
                assert max(sizes) - min(sizes) <= 1


class TestWarmSweep:
    def setup_method(self):
        self.topo = Topology("sweep")
        for node in ("a", "b", "c", "d"):
            self.topo.add_node(node)
        self.topo.add_bidi_link("a", "b", 10.0)
        self.topo.add_bidi_link("b", "c", 8.0)
        self.topo.add_bidi_link("c", "d", 10.0)
        self.topo.add_bidi_link("a", "d", 5.0)
        self.traffic = TrafficMatrix({
            ("a", "c"): 6.0, ("b", "d"): 4.0, ("a", "d"): 3.0,
        })
        self.scales = [0.5, 0.75, 1.0, 1.25, 1.5, 2.0]

    def test_warm_sweep_matches_cold_with_fewer_full_solves(self):
        obs.metrics.reset()
        cold = scale_sweep(
            self.topo, self.traffic, "pf4", scales=self.scales
        )
        cold_solves = obs.metrics.snapshot()["lp.solves"]["value"]
        obs.metrics.reset()
        warm = scale_sweep(
            self.topo, self.traffic, "pf4", scales=self.scales,
            warm_start=True,
        )
        snapshot = obs.metrics.snapshot()
        warm_solves = snapshot["lp.solves"]["value"]
        assert warm_solves < cold_solves
        assert snapshot["sweep.warm_chains"]["value"] == 1
        for c, w in zip(cold, warm):
            assert w.objective == pytest.approx(c.objective, abs=1e-6)
            assert w.scale == c.scale

    def test_warm_parallel_deterministic_and_ordered(self):
        runs = [
            scale_sweep(
                self.topo, self.traffic, "pf4", scales=self.scales,
                workers=3, warm_start=True,
            )
            for _ in range(2)
        ]
        assert [p.objective for p in runs[0]] == [
            p.objective for p in runs[1]
        ]
        assert [p.scale for p in runs[0]] == self.scales

    def test_warm_sweep_collects_failures_per_point(self):
        plan = FaultPlan.parse("rate=0.4,seed=11,sites=lp.solve")
        with chaos(plan):
            results = scale_sweep(
                self.topo, self.traffic, "pf4", scales=self.scales,
                warm_start=True, on_error="collect",
            )
        assert len(results) == len(self.scales)
        failures = [r for r in results if isinstance(r, TaskFailure)]
        assert failures  # rate=0.4 over 6+ solves must hit something
        for failure in failures:
            assert results[failure.index] is failure

    def test_non_warm_capable_solver_silently_cold(self):
        # fleischer has no warm support; warm_start=True must not break.
        results = scale_sweep(
            self.topo, self.traffic, "fleischer", scales=[0.5, 1.0],
            warm_start=True,
        )
        assert len(results) == 2

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError):
            scale_sweep(
                self.topo, self.traffic, "pf4", scales=[1.0],
                on_error="bogus",
            )

    def test_max_feasible_scale_warm_matches_cold(self):
        warm = max_feasible_scale(self.topo, self.traffic, oracle="edge")
        cold = max_feasible_scale(
            self.topo, self.traffic, oracle="edge", warm_start=False
        )
        assert warm == pytest.approx(cold, rel=1e-6)
