"""Tests for the smaller extensions: demand scaling, BDD DOT export,
Waxman generator, TE solution helpers, LoC counting over packages."""

import pytest

from repro.bdd.builder import new_engine, prefix_to_bdd
from repro.bdd.dot import node_count, to_dot
from repro.bdd.engine import BDD_FALSE, BDD_TRUE
from repro.netmodel.headerspace import Prefix
from repro.netmodel.instances import make_te_instance
from repro.netmodel.topology import Topology
from repro.netmodel.topozoo import waxman_topology
from repro.netmodel.traffic import TrafficMatrix
from repro.te import (
    max_feasible_scale,
    scale_sweep,
    solve_max_flow,
)
from repro.te.solution import TESolution


def line_topology(cap=10.0):
    topo = Topology("line")
    for node in ("a", "b", "c"):
        topo.add_node(node)
    topo.add_bidi_link("a", "b", cap)
    topo.add_bidi_link("b", "c", cap)
    return topo


class TestDemandScale:
    def test_max_feasible_scale_on_line(self):
        topo = line_topology(cap=10.0)
        traffic = TrafficMatrix({("a", "c"): 5.0})
        scale = max_feasible_scale(topo, traffic, tolerance=0.01)
        # Bottleneck is 10 Mbps for 5 Mbps demand -> scale ~2.
        assert scale == pytest.approx(2.0, rel=0.05)

    def test_scale_beyond_bracket(self):
        topo = line_topology(cap=1000.0)
        traffic = TrafficMatrix({("a", "c"): 0.001})
        scale = max_feasible_scale(topo, traffic, upper_start=2.0)
        assert scale > 1000.0  # grows the bracket as needed

    def test_empty_traffic_rejected(self):
        with pytest.raises(ValueError):
            max_feasible_scale(line_topology(), TrafficMatrix())

    def test_scale_sweep_monotone_demand(self):
        topo = line_topology()
        traffic = TrafficMatrix({("a", "c"): 4.0})
        points = scale_sweep(
            topo, traffic, lambda t, m: solve_max_flow(t, m), [0.5, 1.0, 4.0]
        )
        assert [p.scale for p in points] == [0.5, 1.0, 4.0]
        assert points[0].satisfied_fraction == pytest.approx(1.0)
        assert points[-1].satisfied_fraction < 1.0

    def test_scale_sweep_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scale_sweep(
                line_topology(),
                TrafficMatrix({("a", "c"): 1.0}),
                lambda t, m: solve_max_flow(t, m),
                [0.0],
            )


class TestBddDot:
    def test_terminal_only(self):
        engine = new_engine("jdd")
        text = to_dot(engine, BDD_TRUE)
        assert "digraph" in text
        assert node_count(engine, BDD_TRUE) == 0

    def test_prefix_dot_structure(self):
        engine = new_engine("jdd")
        node = prefix_to_bdd(engine, Prefix(0xC000, 2))
        text = to_dot(engine, node)
        # Two variables constrained -> two internal nodes.
        assert node_count(engine, node) == 2
        assert text.count("shape=circle") == 2
        assert "style=dashed" in text

    def test_var_names_used(self):
        engine = new_engine("jdd")
        node = engine.var(0)
        text = to_dot(engine, node, var_names={0: "dst[0]"})
        assert "dst[0]" in text


class TestWaxman:
    def test_connected_and_deterministic(self):
        a = waxman_topology(20, seed=3)
        b = waxman_topology(20, seed=3)
        assert a.is_connected()
        assert [(l.src, l.dst) for l in a.links()] == [
            (l.src, l.dst) for l in b.links()
        ]

    def test_seed_changes_graph(self):
        a = waxman_topology(20, seed=3)
        b = waxman_topology(20, seed=4)
        assert [(l.src, l.dst) for l in a.links()] != [
            (l.src, l.dst) for l in b.links()
        ]

    def test_denser_with_higher_alpha(self):
        sparse = waxman_topology(30, alpha=0.2, seed=1)
        dense = waxman_topology(30, alpha=0.9, seed=1)
        assert dense.num_links > sparse.num_links

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            waxman_topology(1)
        with pytest.raises(ValueError):
            waxman_topology(10, alpha=0.0)

    def test_usable_by_te(self):
        from repro.netmodel.traffic import gravity_traffic_matrix

        topo = waxman_topology(15, seed=2)
        traffic = gravity_traffic_matrix(topo, seed=1, max_commodities=40)
        solution = solve_max_flow(topo, traffic)
        assert solution.ok


class TestTESolutionHelpers:
    def test_relative_gap(self):
        reference = TESolution("ref", objective=100.0)
        worse = TESolution("x", objective=90.0)
        assert worse.relative_gap(reference) == pytest.approx(0.10)
        assert worse.relative_gap(TESolution("z", objective=0.0)) == 0.0

    def test_satisfied_fraction_zero_demand(self):
        assert TESolution("x", objective=5.0).satisfied_fraction(0.0) == 0.0

    def test_ok_flag(self):
        assert TESolution("x", objective=1.0).ok
        assert not TESolution("x", objective=0.0, status="infeasible").ok


class TestPackageLoc:
    def test_count_package_loc_positive_and_additive(self):
        import repro.lp
        import repro.lp.model
        from repro.core.metrics import count_module_loc, count_package_loc

        package_total = count_package_loc(repro.lp)
        module_only = count_module_loc(repro.lp.model)
        assert package_total > module_only > 0
