"""Tests for the motivating example (section 2.2): exact paper numbers
plus a real loopback run of the generated game."""

import io
import contextlib

import pytest

from repro.core.assembly import assemble_module
from repro.core.validation import validate_rps
from repro.motivating import (
    MOTIVATING_PROMPTS,
    play_scripted_game,
    run_motivating_session,
)


@pytest.fixture(scope="module")
def session_result():
    return run_motivating_session()


@pytest.fixture(scope="module")
def game_module(session_result):
    return assemble_module(session_result.artifacts, "rps_for_tests")


class TestPaperNumbers:
    def test_four_prompts(self, session_result):
        assert session_result.num_prompts == 4

    def test_159_words(self, session_result):
        assert session_result.total_words == 159

    def test_93_loc(self, session_result):
        assert session_result.total_loc == 93

    def test_prompt_kinds(self):
        kinds = [prompt.kind.value for prompt in MOTIVATING_PROMPTS]
        assert kinds == [
            "system-overview",
            "generate",
            "generate",
            "debug-testcase",
        ]


class TestGeneratedGame:
    def test_judge_rules(self, game_module):
        assert game_module.judge("R", "S") == "server"
        assert game_module.judge("S", "R") == "client"
        assert game_module.judge("P", "P") == "tie"

    def test_validation_normalises(self, game_module):
        assert game_module.validate_input("  r ") == "R"

    def test_full_game_over_loopback(self, game_module):
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            outcome = play_scripted_game(game_module)
        assert outcome.results == ["client", "server", "tie"]
        assert outcome.consistent
        assert outcome.rounds_played == 3

    def test_lowercase_moves_survive_validation(self, game_module):
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            outcome = play_scripted_game(
                game_module, moves=["p", " r", "s ", "D"]
            )
        assert outcome.results == ["client", "server", "tie"]

    def test_longer_game(self, game_module):
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            outcome = play_scripted_game(
                game_module, moves=["R", "R", "R", "R", "R", "R", "D"]
            )
        # Server cycles R,P,S against constant R: tie, server, client, ...
        assert outcome.results == ["tie", "server", "client"] * 2

    def test_validator_passes(self, game_module):
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            passed, details = validate_rps(game_module)
        assert passed, details
