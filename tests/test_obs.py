"""Tests for the observability package: tracer, metrics, exporters, CLI."""

import concurrent.futures
import io
import json
import threading

import pytest

from repro import obs
from repro.cli import main
from repro.obs import export
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts and ends with the no-op tracer and empty registry."""
    obs.set_tracer(obs.NOOP)
    obs.metrics.reset()
    yield
    obs.set_tracer(obs.NOOP)
    obs.metrics.reset()


class TestTracer:
    def test_nesting_assigns_parent_ids(self):
        with obs.tracing() as tracer:
            with obs.span("outer") as outer:
                with obs.span("inner") as inner:
                    pass
                with obs.span("sibling") as sibling:
                    pass
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id
        assert outer.parent_id is None
        assert len({outer.span_id, inner.span_id, sibling.span_id}) == 3

    def test_children_finish_before_parents(self):
        with obs.tracing() as tracer:
            with obs.span("a"):
                with obs.span("b"):
                    with obs.span("c"):
                        pass
        names = [span.name for span in tracer.finished_spans()]
        assert names == ["c", "b", "a"]

    def test_durations_are_ordered(self):
        with obs.tracing() as tracer:
            with obs.span("outer") as outer:
                with obs.span("inner") as inner:
                    pass
        assert 0.0 <= inner.duration <= outer.duration
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_meta_from_kwargs_and_set(self):
        with obs.tracing():
            with obs.span("s", topology="Colt") as span:
                span.set(objective=1.5)
        assert span.meta == {"topology": "Colt", "objective": 1.5}

    def test_exception_recorded_and_propagated(self):
        with obs.tracing() as tracer:
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("nope")
        (span,) = tracer.finished_spans()
        assert span.meta["error"] == "ValueError"
        assert span.duration >= 0.0

    def test_thread_safety_under_concurrent_futures(self):
        def work(index):
            with obs.span(f"job{index}"):
                with obs.span("step", index=index):
                    pass
            return index

        with obs.tracing() as tracer:
            with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
                results = list(pool.map(work, range(16)))
        assert results == list(range(16))
        spans = tracer.finished_spans()
        assert len(spans) == 32
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            if span.name == "step":
                parent = by_id[span.parent_id]
                # Nesting never crosses threads.
                assert parent.thread_name == span.thread_name
                assert parent.name == f"job{span.meta['index']}"

    def test_tracing_restores_previous_tracer(self):
        first = obs.Tracer()
        obs.set_tracer(first)
        with obs.tracing() as second:
            assert obs.get_tracer() is second
        assert obs.get_tracer() is first

    def test_clear(self):
        with obs.tracing() as tracer:
            with obs.span("x"):
                pass
            tracer.clear()
            assert tracer.finished_spans() == []


class TestNoop:
    def test_default_tracer_records_nothing(self):
        assert obs.get_tracer() is obs.NOOP
        with obs.span("unrecorded") as span:
            pass
        assert obs.NOOP.finished_spans() == []
        assert isinstance(span, obs.NoopSpan)

    def test_noop_span_still_measures_duration(self):
        with obs.span("timed") as span:
            total = sum(range(1000))
        assert total == 499500
        assert span.duration >= 0.0

    def test_noop_span_set_is_inert(self):
        with obs.span("s") as span:
            assert span.set(anything=1) is span

    def test_noop_allocates_no_metadata(self):
        span = obs.NOOP.span("s", {"k": "v"})
        assert not hasattr(span, "meta")

    def test_noop_overhead_is_negligible(self):
        import time

        start = time.perf_counter()
        for _ in range(10_000):
            with obs.span("hot", key="value"):
                pass
        elapsed = time.perf_counter() - start
        # ~1µs per disabled span even on slow CI; the hand-rolled
        # perf_counter pairs this replaced cost the same order.
        assert elapsed < 0.5


class TestMetrics:
    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        gauge.add(-1.0)
        assert gauge.value == 1.5

    def test_histogram_bucketing(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 500.0):
            hist.observe(value)
        # <=1.0 | <=10.0 | <=100.0 | overflow
        assert hist.bucket_counts() == [
            (1.0, 2), (10.0, 1), (100.0, 1), (float("inf"), 1),
        ]
        assert hist.count == 5
        assert hist.mean == pytest.approx(556.5 / 5)

    def test_histogram_snapshot_roundtrips_via_json(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.5)
        snap = json.loads(json.dumps(hist.snapshot()))
        assert snap["type"] == "histogram"
        assert snap["count"] == 1

    def test_registry_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_registry_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert registry.snapshot() == {}

    def test_global_registry_helpers(self):
        obs.metrics.counter("runs").inc(2)
        obs.metrics.gauge("level").set(7)
        snap = obs.metrics.snapshot()
        assert snap["runs"]["value"] == 2
        assert snap["level"]["value"] == 7


class TestExport:
    def _trace_some_spans(self):
        with obs.tracing() as tracer:
            with obs.span("root", topology="Colt"):
                with obs.span("child"):
                    pass
        return tracer.finished_spans()

    def test_jsonl_roundtrip(self, tmp_path):
        spans = self._trace_some_spans()
        obs.metrics.counter("lp.solves").inc(3)
        path = str(tmp_path / "trace.jsonl")
        lines = export.write_jsonl(path, spans, obs.metrics.snapshot())
        assert lines == 3  # two spans + one metric
        records, metrics = export.read_jsonl(path)
        assert [r["name"] for r in records] == ["child", "root"]
        assert records[1]["meta"] == {"topology": "Colt"}
        assert records[0]["parent"] == records[1]["id"]
        assert metrics["lp.solves"]["value"] == 3
        assert metrics["lp.solves"]["type"] == "counter"

    def test_read_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            export.read_jsonl(str(path))
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError):
            export.read_jsonl(str(path))

    def test_chrome_trace_structure(self):
        spans = self._trace_some_spans()
        document = export.chrome_trace(spans, {"m": {"type": "counter", "value": 1}})
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        names = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"root", "child"}
        assert all(e["ts"] >= 0 for e in complete)
        assert names and names[0]["args"]["name"] == threading.current_thread().name
        assert document["otherData"]["metrics"]["m"]["value"] == 1

    def test_write_trace_dispatches_on_extension(self, tmp_path):
        spans = self._trace_some_spans()
        chrome_path = str(tmp_path / "trace.json")
        jsonl_path = str(tmp_path / "trace.jsonl")
        assert export.write_trace(chrome_path, spans) == 2
        assert export.write_trace(jsonl_path, spans) == 2
        with open(chrome_path) as handle:
            assert "traceEvents" in json.load(handle)
        assert len(export.read_jsonl(jsonl_path)[0]) == 2

    def test_render_span_tree(self):
        spans = self._trace_some_spans()
        text = export.render_span_tree(spans)
        lines = text.splitlines()
        assert lines[0].split() == ["total", "self", "span"]
        assert "root" in lines[1] and "topology=Colt" in lines[1]
        assert lines[2].endswith("child")  # indented under root
        assert lines[2].index("child") > lines[1].index("root")
        assert lines[-1] == "2 spans"

    def test_render_span_tree_orphans_become_roots(self):
        record = {
            "type": "span", "id": 7, "parent": 99, "name": "lost",
            "thread": "MainThread", "start": 0.0, "end": 1.0, "dur": 1.0,
            "meta": {},
        }
        text = export.render_span_tree([record])
        assert "lost" in text

    def test_render_metrics(self):
        obs.metrics.counter("runs").inc()
        obs.metrics.histogram("h", buckets=(1.0,)).observe(0.5)
        text = export.render_metrics(obs.metrics.snapshot())
        assert "runs" in text and "counter" in text
        assert "count=1" in text
        assert export.render_metrics({}) == "no metrics recorded"


class TestCLI:
    def test_trace_flag_writes_parseable_jsonl(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        buffer = io.StringIO()
        code = main(
            ["--trace", path, "te", "--commodities", "10"], out=buffer
        )
        assert code == 0
        assert f"trace: wrote" in buffer.getvalue()
        spans, metrics = export.read_jsonl(path)
        names = {record["name"] for record in spans}
        assert "te.ncflow.solve" in names
        assert "lp.solve" in names
        assert metrics["lp.solves"]["value"] > 0

    def test_trace_flag_after_subcommand(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        code = main(
            ["te", "--commodities", "10", "--trace", path], out=io.StringIO()
        )
        assert code == 0
        assert export.read_jsonl(path)[0]

    def test_metrics_flag_prints_registry(self):
        buffer = io.StringIO()
        code = main(["te", "--commodities", "10", "--metrics"], out=buffer)
        assert code == 0
        assert "lp.solves" in buffer.getvalue()

    def test_trace_view_renders_tree_and_metrics(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        main(["--trace", path, "te", "--commodities", "10"], out=io.StringIO())
        buffer = io.StringIO()
        code = main(["trace-view", path], out=buffer)
        assert code == 0
        text = buffer.getvalue()
        assert "te.ncflow.solve" in text
        assert "total" in text and "self" in text
        assert "lp.solves" in text

    def test_trace_view_missing_file_is_clean_error(self, tmp_path):
        buffer = io.StringIO()
        code = main(["trace-view", str(tmp_path / "nope.jsonl")], out=buffer)
        assert code == 1
        assert buffer.getvalue().startswith("error: cannot read")

    def test_trace_view_garbage_file_is_clean_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        buffer = io.StringIO()
        code = main(["trace-view", str(path)], out=buffer)
        assert code == 1
        assert "not JSON" in buffer.getvalue()

    def test_main_restores_noop_tracer(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        main(["--trace", path, "study"], out=io.StringIO())
        assert obs.get_tracer() is obs.NOOP


class TestInstrumentation:
    def test_solver_spans_cover_ncflow_and_populate_solve_seconds(self):
        from repro.netmodel.instances import make_te_instance
        from repro.te.ncflow import NCFlowSolver

        instance = make_te_instance("Colt", max_commodities=10)
        with obs.tracing() as tracer:
            solution = NCFlowSolver().solve(instance.topology, instance.traffic)
        names = {span.name for span in tracer.finished_spans()}
        assert "te.ncflow.solve" in names
        assert "te.ncflow.r1" in names
        assert "te.ncflow.r2" in names
        assert solution.solve_seconds > 0.0

    def test_solve_seconds_populated_with_tracing_disabled(self):
        from repro.netmodel.instances import make_te_instance
        from repro.te import solve_max_flow

        instance = make_te_instance("Colt", max_commodities=10)
        solution = solve_max_flow(instance.topology, instance.traffic)
        assert solution.solve_seconds > 0.0

    def test_pipeline_report_carries_metrics(self):
        from repro.experiments import run_participant

        with obs.tracing() as tracer:
            report = run_participant("A")
        assert report.metrics["seconds.total"] > 0.0
        assert report.metrics["prompts"] == report.num_prompts
        names = {span.name for span in tracer.finished_spans()}
        for step in (
            "pipeline.overview", "pipeline.interfaces", "pipeline.components",
            "pipeline.data_format", "pipeline.assembly", "pipeline.validation",
        ):
            assert step in names, f"missing workflow step span {step}"

    def test_ap_build_and_query_spans(self):
        from repro.ap import APVerifier
        from repro.netmodel.datasets import build_verification_dataset

        dataset = build_verification_dataset("Internet2")
        with obs.tracing() as tracer:
            verifier = APVerifier(dataset)
            nodes = list(dataset.topology.nodes)
            result = verifier.reachable_atoms(nodes[0], nodes[-1])
        names = [span.name for span in tracer.finished_spans()]
        assert "ap.build" in names
        assert "ap.query" in names
        assert verifier.predicate_seconds > 0.0
        assert result.query_seconds >= 0.0
        build = next(
            s for s in tracer.finished_spans() if s.name == "ap.build"
        )
        assert build.meta["atoms"] == verifier.num_atoms
        assert "bdd_num_nodes" in build.meta
