"""Tests for the live telemetry tier: labeled metrics, exposition
endpoint, sampling profiler, and progress events."""

import io
import json
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.cli import main
from repro.obs import export
from repro.obs.http import MetricsServer, prometheus_text
from repro.obs.metrics import (
    BUCKET_PRESETS,
    DEFAULT_BUCKETS,
    RESERVOIR_SIZE,
    Histogram,
    MetricsRegistry,
    buckets_for,
)
from repro.obs.profile import SamplingProfiler, read_collapsed, render_top
from repro.obs.progress import ProgressTracker
from repro.parallel import run_ordered


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.set_tracer(obs.NOOP)
    obs.metrics.reset()
    obs.PROGRESS.reset()
    yield
    obs.set_tracer(obs.NOOP)
    obs.metrics.reset()
    obs.PROGRESS.reset()


class TestLabeledMetrics:
    def test_labels_identify_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("c", solver="pf4").inc()
        registry.counter("c", solver="edge").inc(2)
        assert registry.counter("c", solver="pf4").value == 1
        assert registry.counter("c", solver="edge").value == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("c", x=1, y=2)
        b = registry.counter("c", y=2, x=1)
        assert a is b

    def test_labeled_counter_updates_family_total(self):
        registry = MetricsRegistry()
        registry.counter("c", solver="pf4").inc(3)
        registry.counter("c", solver="edge").inc(2)
        assert registry.counter("c").value == 5

    def test_labeled_histogram_updates_family_total(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,), backend="a").observe(0.5)
        registry.histogram("h", buckets=(1.0,), backend="b").observe(2.0)
        base = registry.histogram("h", buckets=(1.0,))
        assert base.count == 2
        assert base.total == 2.5

    def test_gauges_do_not_aggregate(self):
        registry = MetricsRegistry()
        registry.gauge("g", phase="a").set(5)
        assert registry.gauge("g").value == 0.0

    def test_kind_conflict_rejected_across_labels(self):
        registry = MetricsRegistry()
        registry.counter("m", solver="pf4")
        with pytest.raises(TypeError):
            registry.gauge("m")
        with pytest.raises(TypeError):
            registry.histogram("m", other="x")

    def test_snapshot_carries_labels(self):
        registry = MetricsRegistry()
        registry.counter("c", solver="pf4").inc()
        snap = registry.snapshot()
        assert snap['c{solver="pf4"}']["labels"] == {"solver": "pf4"}
        assert "labels" not in snap["c"]

    def test_module_helpers_accept_labels(self):
        obs.metrics.counter("runs", paper="ncflow").inc()
        obs.metrics.histogram("h", phase="x").observe(1.0)
        snap = obs.metrics.snapshot()
        assert snap['runs{paper="ncflow"}']["value"] == 1
        assert snap["runs"]["value"] == 1
        assert snap['h{phase="x"}']["count"] == 1


class TestPercentiles:
    def test_exact_percentiles_under_reservoir_size(self):
        hist = Histogram("h", buckets=(1000.0,))
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(50) == 50.0
        assert hist.percentile(95) == 95.0
        assert hist.percentile(99) == 99.0
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0

    def test_snapshot_includes_percentiles(self):
        hist = Histogram("h", buckets=(1000.0,))
        for value in range(1, 101):
            hist.observe(float(value))
        snap = hist.snapshot()
        assert snap["p50"] == 50.0
        assert snap["p95"] == 95.0
        assert snap["p99"] == 99.0

    def test_reservoir_bounded_and_deterministic(self):
        first = Histogram("h", buckets=(1e9,))
        second = Histogram("h", buckets=(1e9,))
        for value in range(RESERVOIR_SIZE * 3):
            first.observe(float(value))
            second.observe(float(value))
        assert len(first._reservoir) == RESERVOIR_SIZE
        assert first._reservoir == second._reservoir
        assert first.percentile(50) == second.percentile(50)

    def test_percentile_range_validated(self):
        hist = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_empty_histogram_reports_nulls(self):
        snap = Histogram("h", buckets=(1.0,)).snapshot()
        assert snap["mean"] is None
        assert snap["p50"] is None
        assert snap["p95"] is None
        assert snap["p99"] is None
        assert snap["count"] == 0
        # and the rendering shows a dash, not a fabricated zero
        assert "mean=-" in export.render_metrics({"h": snap})

    def test_empty_histogram_snapshot_is_json_safe(self):
        snap = json.loads(json.dumps(Histogram("h", buckets=(1.0,)).snapshot()))
        assert snap["mean"] is None


class TestBucketPresets:
    def test_domains_have_distinct_scales(self):
        assert buckets_for("bdd.apply_seconds") == BUCKET_PRESETS["bdd"]
        assert buckets_for("lp.solve_seconds") == BUCKET_PRESETS["lp"]
        assert max(BUCKET_PRESETS["bdd"]) < 1.0  # sub-second ceiling
        assert max(BUCKET_PRESETS["lp"]) >= 60.0  # minute-scale solves

    def test_unknown_domain_falls_back_to_default(self):
        assert buckets_for("mystery.metric") == DEFAULT_BUCKETS

    def test_registry_applies_preset_when_buckets_omitted(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lp.solve_seconds")
        assert tuple(hist.bounds) == tuple(sorted(BUCKET_PRESETS["lp"]))
        explicit = registry.histogram("lp.iterations", buckets=(1, 10))
        assert explicit.bounds == [1.0, 10.0]


class TestConcurrency:
    def test_labeled_hammer_under_run_ordered_workers(self):
        registry = MetricsRegistry()

        def hammer(worker: int):
            for index in range(200):
                registry.counter("hits", worker=worker).inc()
                registry.histogram("lat", worker=worker).observe(index / 1000)
            return worker

        results = run_ordered(
            [lambda w=w: hammer(w) for w in range(8)], workers=8
        )
        assert results == list(range(8))
        assert registry.counter("hits").value == 8 * 200
        assert registry.histogram("lat").count == 8 * 200
        for worker in range(8):
            assert registry.counter("hits", worker=worker).value == 200

    def test_snapshot_races_concurrent_registration(self):
        registry = MetricsRegistry()
        snapshots = []

        def register_many(worker: int):
            for index in range(100):
                registry.counter(f"c{worker}", i=index).inc()
            return worker

        def snapshot_loop(_: int):
            for _ in range(50):
                snapshots.append(registry.snapshot())
            return -1

        tasks = [lambda w=w: register_many(w) for w in range(6)]
        tasks += [lambda w=w: snapshot_loop(w) for w in range(2)]
        run_ordered(tasks, workers=8)
        final = registry.snapshot()
        # 6 workers x 100 labeled series + 6 family bases
        assert len(final) == 6 * 100 + 6
        assert all(isinstance(s, dict) for s in snapshots)

    def test_names_returns_consistent_copy(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        names = registry.names()
        registry.counter("b").inc()
        assert names == ["a"]


class TestPrometheusText:
    def test_counter_gauge_histogram_families(self):
        obs.metrics.counter("solver.solve_calls", solver="pf4").inc(2)
        obs.metrics.gauge("progress.total", phase="campaign").set(4)
        obs.metrics.histogram("lp.solve_seconds", backend="fast").observe(0.02)
        text = prometheus_text(obs.metrics.snapshot())
        assert "# TYPE solver_solve_calls counter" in text
        assert 'solver_solve_calls{solver="pf4"} 2' in text
        assert "solver_solve_calls 2" in text  # family total
        assert 'progress_total{phase="campaign"} 4' in text
        assert 'lp_solve_seconds_bucket{backend="fast",le="+Inf"} 1' in text
        assert 'lp_solve_seconds_count{backend="fast"} 1' in text

    def test_bucket_counts_are_cumulative(self):
        obs.metrics.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        obs.metrics.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        text = prometheus_text(obs.metrics.snapshot())
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="+Inf"} 2' in text

    def test_label_values_escaped(self):
        obs.metrics.counter("c", path='a"b').inc()
        text = prometheus_text(obs.metrics.snapshot())
        assert 'c{path="a\\"b"} 1' in text


class TestEndpoint:
    def test_lifecycle_scrape_and_stop(self):
        obs.metrics.counter("solver.solve_calls", solver="pf4").inc()
        server = MetricsServer(port=0).start()
        try:
            assert server.port > 0
            body = urllib.request.urlopen(
                f"{server.url}/metrics", timeout=5
            ).read().decode()
            assert 'solver_solve_calls{solver="pf4"} 1' in body
            health = urllib.request.urlopen(f"{server.url}/health", timeout=5)
            assert health.status == 200
            snap = json.loads(
                urllib.request.urlopen(
                    f"{server.url}/snapshot", timeout=5
                ).read()
            )
            assert "metrics" in snap and "progress" in snap
            assert snap["uptime_seconds"] >= 0.0
        finally:
            server.stop()
        # stop is idempotent
        server.stop()

    def test_snapshot_exposes_live_progress_with_eta(self):
        phase = obs.PROGRESS.phase("campaign", total=4)
        phase.task_start("a")
        phase.task_finish("a")
        phase.task_start("b")
        server = MetricsServer(port=0).start()
        try:
            snap = json.loads(
                urllib.request.urlopen(
                    f"{server.url}/snapshot", timeout=5
                ).read()
            )
        finally:
            server.stop()
        (entry,) = snap["progress"]["phases"]
        assert entry["total"] == 4
        assert entry["completed"] == 1
        assert entry["running"] == 1
        assert entry["eta_seconds"] is not None

    def test_unknown_route_is_404(self):
        server = MetricsServer(port=0).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(f"{server.url}/nope", timeout=5)
            assert info.value.code == 404
        finally:
            server.stop()

    def test_port_in_use_raises_synchronously(self):
        server = MetricsServer(port=0).start()
        try:
            with pytest.raises(OSError):
                MetricsServer(port=server.port).start()
        finally:
            server.stop()

    def test_double_start_rejected(self):
        server = MetricsServer(port=0).start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()


class TestProfiler:
    def test_profiler_sees_a_busy_function(self, tmp_path):
        import threading

        stop = threading.Event()

        def busy_wait_loop():
            while not stop.is_set():
                sum(range(500))

        worker = threading.Thread(target=busy_wait_loop, daemon=True)
        profiler = SamplingProfiler(interval=0.001)
        worker.start()
        with profiler:
            time.sleep(0.15)
        stop.set()
        worker.join(timeout=5)
        assert profiler.samples > 10
        lines = profiler.collapsed()
        assert lines, "no stacks captured"
        assert any("busy_wait_loop" in line for line in lines)
        path = str(tmp_path / "out.collapsed")
        assert profiler.write(path) == len(lines)
        counts = read_collapsed(path)
        assert sum(counts.values()) == sum(
            int(line.rsplit(" ", 1)[1]) for line in lines
        )
        rendered = render_top(counts, top=5)
        assert "frame" in rendered and "samples" in rendered

    def test_collapsed_lines_are_sorted_and_parseable(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            time.sleep(0.03)
        lines = profiler.collapsed()
        assert lines == sorted(lines)
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack and count.isdigit()

    def test_read_collapsed_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.collapsed"
        path.write_text("this is not a profile\n")
        with pytest.raises(ValueError):
            read_collapsed(str(path))

    def test_render_top_empty_and_zero_guards(self):
        assert render_top({}) == "no samples recorded"
        text = render_top({"a;b": 2, "a;c": 1}, top=10)
        assert "a" in text and "100.0%" in text

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)


class TestProgressEvents:
    def test_phase_counts_and_eta(self):
        tracker = ProgressTracker()
        phase = tracker.phase("sweep", total=3)
        phase.task_start("s1")
        phase.task_finish("s1")
        snap = tracker.snapshot()["phases"][0]
        assert snap["completed"] == 1
        assert snap["failed"] == 0
        assert snap["eta_seconds"] is not None
        phase.task_start("s2")
        phase.task_finish("s2", ok=False)
        phase.finish()
        snap = tracker.snapshot()["phases"][0]
        assert snap["failed"] == 1
        assert snap["done"] is True
        assert snap["eta_seconds"] is None

    def test_event_schema_roundtrip_through_jsonl(self, tmp_path):
        tracker = ProgressTracker()
        phase = tracker.phase("campaign", total=1)
        phase.task_start("ncflow/modular-pseudocode")
        phase.task_finish("ncflow/modular-pseudocode", succeeded=True)
        phase.finish()
        events = tracker.events()
        kinds = [event["kind"] for event in events]
        assert kinds == [
            "phase_start", "task_start", "task_finish", "phase_finish",
        ]
        for event in events:
            assert event["type"] == "event"
            assert isinstance(event["seq"], int)
            assert isinstance(event["time_unix"], float)
            assert event["phase"] == "campaign"
        path = str(tmp_path / "trace.jsonl")
        lines = export.write_jsonl(path, [], {}, events)
        assert lines == len(events)
        spans, metrics, back = export.read_trace(path)
        assert spans == [] and metrics == {}
        assert [event["kind"] for event in back] == kinds
        assert back[2]["ok"] is True
        assert back[2]["meta"] == {"succeeded": True}
        # legacy reader tolerates (and hides) event records
        assert export.read_jsonl(path) == ([], {})

    def test_event_log_is_bounded(self):
        from repro.obs import progress as progress_mod

        tracker = ProgressTracker()
        phase = tracker.phase("big", total=progress_mod.MAX_EVENTS)
        for index in range(progress_mod.MAX_EVENTS // 2 + 10):
            phase.task_start(str(index))
            phase.task_finish(str(index))
        snap = tracker.snapshot()
        assert snap["events"] <= progress_mod.MAX_EVENTS
        assert snap["events_dropped"] > 0

    def test_campaign_emits_progress(self):
        from repro.experiments import run_campaign

        result = run_campaign(["rps"], workers=2)
        assert result.num_runs == 1
        snap = obs.PROGRESS.snapshot()["phases"][0]
        assert snap["phase"] == "campaign"
        assert snap["completed"] == 1
        assert snap["done"] is True
        labels = [
            event.get("label") for event in obs.PROGRESS.events()
            if event["kind"] == "task_finish"
        ]
        assert labels == ["rps/modular-pseudocode"]

    def test_scale_sweep_emits_progress(self):
        from repro.netmodel.instances import make_te_instance
        from repro.te.demandscale import scale_sweep

        instance = make_te_instance("B4", max_commodities=10)
        scale_sweep(
            instance.topology, instance.traffic, "pf4", [0.5, 1.0], workers=2
        )
        snap = obs.PROGRESS.snapshot()["phases"][0]
        assert snap["phase"] == "scale_sweep"
        assert snap["completed"] == 2
        assert snap["done"] is True


class TestTraceViewTop:
    def _write_trace(self, tmp_path, durations):
        spans = []
        for index, duration in enumerate(durations):
            spans.append({
                "type": "span", "id": index + 1, "parent": None,
                "name": f"span{index}", "thread": "MainThread",
                "start": 0.0, "end": duration, "dur": duration, "meta": {},
            })
        path = str(tmp_path / "t.jsonl")
        export.write_jsonl(path, spans)
        return path

    def test_top_ranks_slowest_names(self, tmp_path):
        path = self._write_trace(tmp_path, [0.1, 0.5, 0.3])
        buffer = io.StringIO()
        assert main(["trace-view", path, "--top", "2"], out=buffer) == 0
        lines = buffer.getvalue().splitlines()
        assert "span1" in lines[1]
        assert "span2" in lines[2]
        assert "span0" not in buffer.getvalue()

    def test_zero_duration_spans_do_not_divide_by_zero(self, tmp_path):
        path = self._write_trace(tmp_path, [0.0, 0.0])
        buffer = io.StringIO()
        assert main(["trace-view", path, "--top", "5"], out=buffer) == 0
        assert "0.0%" in buffer.getvalue()

    def test_render_top_spans_empty(self):
        assert export.render_top_spans([]) == "no spans recorded"


class TestCLILiveFlags:
    def test_serve_metrics_flag_binds_and_reports_port(self):
        buffer = io.StringIO()
        code = main(
            ["te", "--commodities", "5", "--serve-metrics", "0"], out=buffer
        )
        assert code == 0
        assert "metrics: serving at http://127.0.0.1:" in buffer.getvalue()

    def test_profile_flag_writes_collapsed_stacks(self, tmp_path):
        path = str(tmp_path / "prof.collapsed")
        buffer = io.StringIO()
        code = main(
            ["te", "--commodities", "40", "--profile", path], out=buffer
        )
        assert code == 0
        assert "profile: wrote" in buffer.getvalue()
        counts = read_collapsed(path)
        view = io.StringIO()
        assert main(["profile-view", path, "--top", "5"], out=view) == 0
        assert "frame" in view.getvalue()
        assert counts or "0 samples" not in view.getvalue()

    def test_profile_view_missing_file_is_clean_error(self, tmp_path):
        buffer = io.StringIO()
        code = main(
            ["profile-view", str(tmp_path / "nope.collapsed")], out=buffer
        )
        assert code == 1
        assert buffer.getvalue().startswith("error: cannot read")

    def test_obs_serve_duration_runs_and_stops(self):
        buffer = io.StringIO()
        code = main(
            ["obs", "serve", "--port", "0", "--duration", "0.1"], out=buffer
        )
        assert code == 0
        text = buffer.getvalue()
        assert "serving http://127.0.0.1:" in text
        assert "stopped" in text

    def test_trace_records_progress_events(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        code = main(
            [
                "--trace", path, "te", "--commodities", "10",
                "--sweep", "0.5,1.0", "--solver", "pf4",
            ],
            out=io.StringIO(),
        )
        assert code == 0
        _, _, events = export.read_trace(path)
        assert any(event["kind"] == "phase_finish" for event in events)
        view = io.StringIO()
        assert main(["trace-view", path], out=view) == 0
        assert "phase scale_sweep: 2/2 completed" in view.getvalue()
