"""Property tests for the paper-document format, plus the spec linter
and the reachability-tree query."""

import re

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.paper import ComponentSpec, PaperSpec, PseudocodeBlock
from repro.core.paperdoc import lint_spec, parse_paperdoc, render_paperdoc

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Text fragments that survive the format: single-line, no markup tokens
# that the parser treats specially at line starts.
_name = st.from_regex(r"[a-z][a-z0-9_]{0,12}", fullmatch=True)
_words = st.lists(
    st.from_regex(r"[A-Za-z0-9,.()]{1,10}", fullmatch=True),
    min_size=8,
    max_size=20,
).map(" ".join)
_interface = st.from_regex(r"[a-z_]{1,10}\([a-z, ]{0,12}\) -> [a-z]{1,8}", fullmatch=True)
_pseudo_line = st.from_regex(r"[a-z][a-z <>=+\-]{0,24}", fullmatch=True)


@st.composite
def specs(draw):
    num_components = draw(st.integers(min_value=1, max_value=4))
    names = draw(
        st.lists(_name, min_size=num_components, max_size=num_components, unique=True)
    )
    components = []
    for index, name in enumerate(names):
        has_pseudo = draw(st.booleans())
        pseudocode = None
        if has_pseudo:
            lines = draw(st.lists(_pseudo_line, min_size=1, max_size=4))
            pseudocode = PseudocodeBlock(
                name=draw(st.from_regex(r"Listing [0-9]{1,2}", fullmatch=True)),
                text="\n".join(lines) + "\n",
            )
        num_deps = draw(st.integers(min_value=0, max_value=index))
        depends = tuple(names[:num_deps])
        interfaces = tuple(
            draw(st.lists(_interface, min_size=0, max_size=3))
        )
        components.append(
            ComponentSpec(
                name=name,
                description=draw(_words),
                pseudocode=pseudocode,
                interfaces=interfaces,
                depends_on=depends,
            )
        )
    return PaperSpec(
        key=draw(_name),
        title=draw(_words),
        venue=draw(st.sampled_from(["SIGCOMM", "NSDI", "ToN", "HotNets"])),
        year=draw(st.integers(min_value=1990, max_value=2030)),
        system_summary=draw(_words),
        components=tuple(components),
        data_format_notes=draw(st.one_of(st.just(""), _words)),
    )


class TestPaperDocRoundTripProperty:
    @SETTINGS
    @given(specs())
    def test_round_trip(self, spec):
        recovered = parse_paperdoc(render_paperdoc(spec))
        assert recovered.key == spec.key
        assert recovered.venue == spec.venue
        assert recovered.year == spec.year
        assert recovered.component_names == spec.component_names
        assert recovered.title.split() == spec.title.split()
        assert recovered.system_summary.split() == spec.system_summary.split()
        for got, want in zip(recovered.components, spec.components):
            assert got.interfaces == want.interfaces
            assert got.depends_on == want.depends_on
            assert got.description.split() == want.description.split()
            assert (got.pseudocode is None) == (want.pseudocode is None)
            if want.pseudocode is not None:
                assert (
                    got.pseudocode.text.strip() == want.pseudocode.text.strip()
                )


class TestLintSpec:
    def test_clean_spec_minimal_warnings(self):
        spec = PaperSpec(
            key="k",
            title="T",
            venue="V",
            year=2024,
            system_summary="s",
            components=(
                ComponentSpec(
                    name="core",
                    description="a sufficiently long description of the component here",
                    pseudocode=PseudocodeBlock("L", "step one\nstep two\n"),
                    interfaces=("run() -> int",),
                ),
            ),
            data_format_notes="input is a json file",
        )
        assert lint_spec(spec) == []

    def test_missing_everything_flagged(self):
        spec = PaperSpec(
            key="k",
            title="T",
            venue="V",
            year=2024,
            system_summary="s",
            components=(
                ComponentSpec(name="core", description="too short"),
            ),
        )
        warnings = lint_spec(spec)
        joined = " ".join(warnings)
        assert "data-format" in joined
        assert "no interfaces" in joined
        assert "no pseudocode" in joined
        assert "very short" in joined

    def test_real_specs_lint_clean_of_interface_warnings(self):
        from repro.core.knowledge import get_paper_spec, paper_keys

        for key in paper_keys():
            warnings = lint_spec(get_paper_spec(key))
            assert not any("no interfaces" in w for w in warnings), key


class TestReachabilityTree:
    def test_tree_matches_pairwise_queries(self, internet2_ap, internet2):
        src = internet2.topology.nodes[0]
        tree = internet2_ap.reachability_tree(src)
        for dst in internet2.topology.nodes:
            if dst == src:
                continue
            want = internet2_ap.reachable_atoms(src, dst).atoms
            assert tree.get(dst, frozenset()) == want, dst

    def test_tree_on_stanford_with_acls(self, stanford):
        from repro.ap import APVerifier

        verifier = APVerifier(stanford)
        src = stanford.topology.nodes[0]
        tree = verifier.reachability_tree(src)
        for dst in stanford.topology.nodes[-4:]:
            if dst == src:
                continue
            want = verifier.reachable_atoms(src, dst).atoms
            assert tree.get(dst, frozenset()) == want

    def test_unknown_source_rejected(self, internet2_ap):
        with pytest.raises(KeyError):
            internet2_ap.reachability_tree("nowhere")
