"""Integration tests: the pipeline end-to-end, participants, experiment."""

import pytest

from repro.core.knowledge import (
    get_component_tests,
    get_knowledge,
    get_logic_notes,
    get_paper_spec,
)
from repro.core.pipeline import PipelineConfig, ReproductionPipeline
from repro.core.prompts import PromptStyle
from repro.core.simulated import SimulatedLLM
from repro.core.validation import get_validator
from repro.experiments import (
    PARTICIPANTS,
    figure4_rows,
    figure5_rows,
    reference_loc_for,
    run_experiment,
    run_participant,
)


def make_pipeline(key, style=PromptStyle.MODULAR_PSEUDOCODE, participant="X"):
    llm = SimulatedLLM({key: get_knowledge(key)})
    return ReproductionPipeline(
        llm,
        get_paper_spec(key),
        component_tests=get_component_tests(key),
        logic_notes=get_logic_notes(key),
        validator=get_validator(key),
        participant=participant,
        config=PipelineConfig(style=style),
        reference_loc=100,
    )


class TestPipelineModular:
    @pytest.mark.parametrize("key", ["ap", "apkeep", "arrow"])
    def test_pseudocode_style_succeeds(self, key):
        report = make_pipeline(key).run()
        assert report.succeeded, report.validation_details
        assert all(outcome.passed for outcome in report.components)

    def test_ncflow_succeeds(self):
        report = make_pipeline("ncflow").run()
        assert report.succeeded, report.validation_details

    def test_debug_rounds_counted(self):
        report = make_pipeline("ap").run()
        by_name = {c.name: c for c in report.components}
        # bdd_setup has exactly one seeded (error) defect.
        assert by_name["bdd_setup"].debug_rounds == 1
        assert by_name["bdd_setup"].revisions == 2
        # atomic is defect-free.
        assert by_name["atomic"].debug_rounds == 0

    def test_text_style_needs_more_rounds(self):
        pseudo = make_pipeline("ap", PromptStyle.MODULAR_PSEUDOCODE).run()
        text = make_pipeline("ap", PromptStyle.MODULAR_TEXT).run()
        assert text.succeeded and pseudo.succeeded
        pseudo_rounds = sum(c.debug_rounds for c in pseudo.components)
        text_rounds = sum(c.debug_rounds for c in text.components)
        assert text_rounds > pseudo_rounds

    def test_report_counts_prompts_and_words(self):
        report = make_pipeline("ap").run()
        assert report.num_prompts >= len(get_paper_spec("ap").components)
        assert report.total_prompt_words > 0
        assert report.reproduced_loc > 0
        assert report.loc_ratio == report.reproduced_loc / 100


class TestPipelineMonolithic:
    @pytest.mark.parametrize("key", ["ap", "arrow"])
    def test_monolithic_fails(self, key):
        report = make_pipeline(key, PromptStyle.MONOLITHIC).run()
        assert not report.succeeded
        assert report.num_prompts == 1


class TestParticipants:
    def test_profiles_cover_four_systems(self):
        keys = {profile.paper_key for profile in PARTICIPANTS.values()}
        assert keys == {"ncflow", "arrow", "apkeep", "ap"}

    def test_reference_loc_positive_and_distinct(self):
        locs = {key: reference_loc_for(key) for key in ("ncflow", "arrow", "apkeep", "ap")}
        assert all(loc > 100 for loc in locs.values())
        # TE references bundle solver + parsing code, so they are larger.
        assert locs["ncflow"] > locs["apkeep"]
        assert locs["arrow"] > locs["ap"]

    def test_run_participant_d(self):
        report = run_participant("D")
        assert report.paper_key == "ap"
        assert report.succeeded


class TestExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment()

    def test_all_four_succeed(self, result):
        assert result.all_succeeded
        assert set(result.reports) == {"A", "B", "C", "D"}

    def test_figure4_rows(self, result):
        rows = figure4_rows(result)
        assert len(rows) == 4
        for participant, system, prompts, words in rows:
            assert prompts > 4
            assert words > 100

    def test_figure5_shape_matches_paper(self, result):
        """TE reproductions are tiny vs their prototypes; DPV ones are
        comparable -- the paper's qualitative Figure 5 finding."""
        rows = {participant: ratio for participant, _, _, _, ratio in figure5_rows(result)}
        assert rows["A"] < 0.35
        assert rows["B"] < 0.35
        assert rows["C"] > 0.5
        assert rows["D"] > 0.4

    def test_validation_details_recorded(self, result):
        report_b = result.report("B")
        assert "open_source_gap" in report_b.validation_details
        # The documented paper-code inconsistency gap is substantial.
        assert report_b.validation_details["open_source_gap"] > 0.05
