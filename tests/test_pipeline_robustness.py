"""Failure-injection tests: the pipeline against misbehaving LLMs.

The pipeline must degrade gracefully -- reports that say what failed --
whatever the model does: returning prose with no code, returning code
that never compiles, returning code that never passes, or going silent
on debug requests.  Also demonstrates that any LLMClient implementation
plugs in (the seam a real API client would use).
"""

import pytest

from repro.core.knowledge import (
    get_component_tests,
    get_knowledge,
    get_logic_notes,
    get_paper_spec,
)
from repro.core.llm import ChatSession, CodeArtifact, LLMClient, LLMResponse
from repro.core.pipeline import PipelineConfig, ReproductionPipeline
from repro.core.prompts import PromptKind


class ProseOnlyLLM(LLMClient):
    """Never returns code."""

    name = "prose-only"

    def chat(self, session, prompt):
        response = LLMResponse("Interesting question! Here is an essay.")
        session.record(prompt, response)
        return response


class BrokenCodeLLM(LLMClient):
    """Returns syntactically broken code for every component, forever."""

    name = "broken-code"

    def chat(self, session, prompt):
        artifacts = []
        if prompt.kind in (
            PromptKind.GENERATE,
            PromptKind.DEBUG_ERROR,
            PromptKind.DEBUG_TESTCASE,
            PromptKind.DEBUG_LOGIC,
        ) and prompt.component:
            artifacts = [
                CodeArtifact(prompt.component, "python", "def broken(:\n", 0)
            ]
        response = LLMResponse("Here you go.", artifacts)
        session.record(prompt, response)
        return response


class WrongOutputLLM(LLMClient):
    """Returns runnable code whose answers are always wrong."""

    name = "wrong-output"

    def chat(self, session, prompt):
        artifacts = []
        if prompt.component:
            source = (
                "def make_engine():\n"
                "    return None\n"
                "def prefix_bdd(engine, prefix):\n"
                "    return 0\n"
            )
            artifacts = [CodeArtifact(prompt.component, "python", source, 0)]
        response = LLMResponse("Should work now.", artifacts)
        session.record(prompt, response)
        return response


class CheatingLLM(LLMClient):
    """Tries to import the reference implementation (not allowed)."""

    name = "cheater"

    def chat(self, session, prompt):
        artifacts = []
        if prompt.component:
            source = "from repro.ap import APVerifier\n"
            artifacts = [CodeArtifact(prompt.component, "python", source, 0)]
        response = LLMResponse("Let me just reuse the prototype...", artifacts)
        session.record(prompt, response)
        return response


def make_pipeline(llm, max_rounds=3):
    return ReproductionPipeline(
        llm,
        get_paper_spec("ap"),
        component_tests=get_component_tests("ap"),
        logic_notes=get_logic_notes("ap"),
        participant="R",
        config=PipelineConfig(max_debug_rounds=max_rounds),
    )


class TestMisbehavingLLMs:
    def test_prose_only_fails_cleanly(self):
        report = make_pipeline(ProseOnlyLLM()).run()
        assert not report.succeeded
        assert all(not outcome.passed for outcome in report.components)
        assert report.reproduced_loc == 0

    def test_broken_code_hits_debug_limit(self):
        report = make_pipeline(BrokenCodeLLM(), max_rounds=2).run()
        assert not report.succeeded
        for outcome in report.components:
            assert outcome.debug_rounds == 2  # capped, not infinite

    def test_wrong_output_recorded_as_failure(self):
        pipeline = make_pipeline(WrongOutputLLM(), max_rounds=2)
        report = pipeline.run()
        assert not report.succeeded
        assert pipeline.failures  # the root causes are recorded

    def test_cheating_is_blocked_by_assembly(self):
        pipeline = make_pipeline(CheatingLLM(), max_rounds=1)
        report = pipeline.run()
        assert not report.succeeded
        # The forbidden import must be the recorded reason somewhere.
        combined = " ".join(pipeline.failures) + str(report.validation_details)
        assert "reference implementation" in combined

    def test_session_still_counted_on_failure(self):
        pipeline = make_pipeline(ProseOnlyLLM())
        report = pipeline.run()
        assert report.num_prompts == pipeline.session.num_prompts
        assert report.num_prompts > 0


class TestCustomClientPluggability:
    def test_minimal_honest_client_succeeds(self):
        """A hand-rolled client that forwards to the knowledge base is
        enough for the pipeline -- the seam a real API wrapper fills."""
        from repro.core.simulated import SimulatedLLM

        inner = SimulatedLLM({"ap": get_knowledge("ap")})

        class ForwardingClient(LLMClient):
            name = "forwarder"

            def chat(self, session, prompt):
                return inner.chat(session, prompt)

        report = make_pipeline(ForwardingClient(), max_rounds=6).run()
        assert all(outcome.passed for outcome in report.components)
