"""Property-based tests (hypothesis) on the core data structures.

Strategy sizes are kept modest so the suite stays fast; the invariants
are the load-bearing ones: BDD operations agree with brute-force set
algebra, atomic predicates always partition the space, Algorithm 1 keeps
hits a partition under any update sequence, LP text round-trips preserve
optima, and LinExpr behaves like a linear map.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bdd.builder import new_engine, prefix_to_bdd
from repro.bdd.engine import BDD_FALSE, BDD_TRUE
from repro.netmodel.headerspace import HEADER_BITS, HeaderSpace, Prefix

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def prefixes(draw):
    length = draw(st.integers(min_value=0, max_value=HEADER_BITS))
    if length == 0:
        return Prefix(0, 0)
    bits = draw(st.integers(min_value=0, max_value=(1 << length) - 1))
    return Prefix(bits << (HEADER_BITS - length), length)


@st.composite
def rules(draw):
    from repro.netmodel.rules import ForwardingRule

    prefix = draw(prefixes())
    port = draw(st.sampled_from(["a", "b", "c", "drop", "self"]))
    return ForwardingRule.lpm(prefix, port)


class TestPrefixProperties:
    @SETTINGS
    @given(prefixes())
    def test_headerspace_size_matches(self, prefix):
        assert len(HeaderSpace.from_prefix(prefix)) == prefix.num_addresses()

    @SETTINGS
    @given(prefixes(), prefixes())
    def test_cover_iff_subset(self, a, b):
        space_a = HeaderSpace.from_prefix(a).addresses
        space_b = HeaderSpace.from_prefix(b).addresses
        assert a.covers(b) == (space_b <= space_a)

    @SETTINGS
    @given(prefixes(), prefixes())
    def test_overlap_iff_nonempty_intersection(self, a, b):
        space_a = HeaderSpace.from_prefix(a).addresses
        space_b = HeaderSpace.from_prefix(b).addresses
        assert a.overlaps(b) == bool(space_a & space_b)


class TestBDDProperties:
    @SETTINGS
    @given(prefixes(), prefixes(), st.sampled_from(["jdd", "javabdd"]))
    def test_ops_match_set_algebra(self, a, b, profile):
        engine = new_engine(profile)
        bdd_a, bdd_b = prefix_to_bdd(engine, a), prefix_to_bdd(engine, b)
        hs_a, hs_b = HeaderSpace.from_prefix(a), HeaderSpace.from_prefix(b)
        assert engine.satcount(engine.and_(bdd_a, bdd_b)) == len(hs_a.intersect(hs_b))
        assert engine.satcount(engine.or_(bdd_a, bdd_b)) == len(hs_a.union(hs_b))
        assert engine.satcount(engine.diff(bdd_a, bdd_b)) == len(hs_a.minus(hs_b))
        assert engine.satcount(engine.not_(bdd_a)) == len(hs_a.complement())

    @SETTINGS
    @given(st.lists(prefixes(), min_size=1, max_size=5))
    def test_de_morgan(self, prefix_list):
        engine = new_engine("jdd")
        nodes = [prefix_to_bdd(engine, p) for p in prefix_list]
        union = BDD_FALSE
        inter_of_nots = BDD_TRUE
        for node in nodes:
            union = engine.or_(union, node)
            inter_of_nots = engine.and_(inter_of_nots, engine.not_(node))
        assert engine.not_(union) == inter_of_nots

    @SETTINGS
    @given(st.lists(prefixes(), min_size=1, max_size=6))
    def test_atomic_predicates_partition(self, prefix_list):
        from repro.ap import compute_atomic_predicates

        engine = new_engine("jdd")
        predicates = [prefix_to_bdd(engine, p) for p in prefix_list]
        atomics = compute_atomic_predicates(engine, predicates)
        # Disjoint and complete.
        atoms = list(atomics.atoms.values())
        total = 0
        for i, a in enumerate(atoms):
            total += engine.satcount(a)
            for b in atoms[i + 1:]:
                assert engine.and_(a, b) == BDD_FALSE
        assert total == 1 << HEADER_BITS
        # Every predicate is exactly its atom union.
        for predicate in predicates:
            rebuilt = atomics.union_bdd(atomics.atoms_of(predicate))
            assert rebuilt == predicate


class TestAlgorithm1Properties:
    @SETTINGS
    @given(st.lists(rules(), min_size=1, max_size=8))
    def test_hits_always_partition(self, rule_list):
        from repro.apkeep import ForwardingElement

        engine = new_engine("jdd")
        element = ForwardingElement("r", engine)
        for rule in rule_list:
            element.insert(rule)
            assert element.check_partition()

    @SETTINGS
    @given(st.lists(rules(), min_size=1, max_size=6), st.data())
    def test_hits_partition_under_removal(self, rule_list, data):
        from repro.apkeep import ForwardingElement

        engine = new_engine("jdd")
        element = ForwardingElement("r", engine)
        for rule in rule_list:
            element.insert(rule)
        victim = data.draw(st.sampled_from(rule_list))
        element.remove(victim)
        assert element.check_partition()

    @SETTINGS
    @given(st.lists(rules(), min_size=1, max_size=6))
    def test_hit_of_matches_device_semantics(self, rule_list):
        from repro.apkeep import ForwardingElement
        from repro.netmodel.rules import Device

        engine = new_engine("jdd")
        element = ForwardingElement("r", engine)
        device = Device("r")
        ports = set()
        for rule in rule_list:
            element.insert(rule)
            device.add_rule(rule)
            ports.add(rule.port)
        ports.add("drop")
        for port in ports:
            assert engine.satcount(element.hit_of(port)) == len(
                device.forwarding_space(port)
            )


class TestPPMProperties:
    @SETTINGS
    @given(st.lists(rules(), min_size=1, max_size=6))
    def test_ppm_tracks_element_exactly(self, rule_list):
        from repro.apkeep import ForwardingElement, PPM

        engine = new_engine("jdd")
        ppm = PPM(engine)
        ppm.add_element("r", ["drop"], "drop")
        element = ForwardingElement("r", engine)
        for rule in rule_list:
            changes = element.insert(rule)
            ppm.apply_changes("r", changes)
            assert ppm.check_partition("r")
        # Per port, the atom union must equal the element's hit union.
        for port in element.ports():
            want = engine.satcount(element.hit_of(port))
            got = sum(
                engine.satcount(ppm.atoms[a]) for a in ppm.atoms_of("r", port)
            )
            assert got == want


class TestLinExprProperties:
    @SETTINGS
    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=5),
        st.lists(st.floats(-10, 10), min_size=5, max_size=5),
    )
    def test_value_is_linear(self, coefs, point):
        from repro.lp import LinExpr, Model

        model = Model()
        variables = model.add_vars(5, lower=-1000)
        expr = LinExpr()
        for i, coef in enumerate(coefs):
            expr += coef * variables[i % 5]
        direct = expr.value(point)
        manual = sum(
            coef * point[i % 5] for i, coef in enumerate(coefs)
        )
        assert direct == pytest.approx(manual, abs=1e-9)

    @SETTINGS
    @given(st.floats(-50, 50), st.floats(-50, 50))
    def test_scaling_distributes(self, alpha, beta):
        from repro.lp import Model

        model = Model()
        x, y = model.add_vars(2, lower=-100)
        left = alpha * (x + y) + beta * (x - y)
        point = [3.0, -2.0]
        expected = alpha * (3.0 - 2.0) + beta * (3.0 + 2.0)
        assert left.value(point) == pytest.approx(expected, abs=1e-9)


class TestLPTextProperties:
    @SETTINGS
    @given(
        st.lists(
            st.tuples(
                st.floats(0.5, 20),  # upper bound
                st.floats(0.1, 5),  # objective coefficient
            ),
            min_size=1,
            max_size=6,
        ),
        st.floats(1, 50),
    )
    def test_round_trip_preserves_optimum(self, variables, cap):
        from repro.lp import LinExpr, Model
        from repro.lp.backends import parse_lp_text, write_lp_text

        model = Model("prop")
        handles = []
        objective = LinExpr()
        for index, (upper, coef) in enumerate(variables):
            var = model.add_var(name=f"v{index}", upper=upper)
            handles.append(var)
            objective += coef * var
        model.add_constraint(LinExpr.sum_of(handles) <= cap)
        model.maximize(objective)
        original = model.solve()
        recovered = parse_lp_text(write_lp_text(model)).solve()
        assert recovered.objective == pytest.approx(
            original.objective, rel=1e-6, abs=1e-6
        )
