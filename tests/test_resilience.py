"""The fault-injection and fault-tolerance layer.

Three contracts under test:

* **Determinism** -- a :class:`FaultPlan` is a pure function of
  ``(seed, site, key)``: the same plan replays the same fault schedule,
  and a chaos campaign run twice with one seed renders byte-identical
  summaries.
* **Zero-fault transparency** -- with no plan installed the resilient
  wrappers are pass-throughs: identical responses, no retries, no
  changed results anywhere.
* **No masking** -- fallback chains rescue *transient* trouble only;
  genuine INFEASIBLE/UNBOUNDED statuses surface unchanged through every
  layer, including the solver registry.
"""

import pytest

from repro import obs
from repro.core.llm import ChatSession, CodeArtifact, LLMClient, LLMResponse
from repro.core.prompts import Prompt, PromptKind
from repro.lp import (
    FastLPBackend,
    LPSolveError,
    Model,
    RECOVERABLE_STATUSES,
    get_backend,
)
from repro.lp.model import SolveResult, SolveStatus
from repro.parallel import TaskFailure, run_ordered
from repro.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    FallbackLPBackend,
    FaultInjector,
    FaultKind,
    FaultPlan,
    InjectedTimeout,
    RESILIENCE_ERRORS,
    ResilientLLMClient,
    RetryExhaustedError,
    RetryPolicy,
    TransientFault,
    active,
    chaos,
    install,
    uninstall,
)


@pytest.fixture(autouse=True)
def no_leftover_injector():
    """Every test starts and ends with chaos off."""
    uninstall()
    yield
    uninstall()


def no_sleep(_seconds):
    pass


# ----------------------------------------------------------------------
# Fault plans and the injector
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "rate=0.2, seed=7, sites=llm.chat+parallel.task, kinds=transient"
        )
        assert plan.rate == 0.2
        assert plan.seed == 7
        assert plan.sites == ("llm.chat", "parallel.task")
        assert plan.kinds == (FaultKind.TRANSIENT,)

    def test_parse_describe_round_trip(self):
        spec = "seed=3,rate=0.5,sites=lp.solve,kinds=timeout"
        assert FaultPlan.parse(spec).describe() == spec

    @pytest.mark.parametrize("spec", [
        "rate",                    # not key=value
        "pace=0.2",                # unknown key
        "rate=0.2,kinds=gamma-ray",  # unknown kind
        "rate=0.2,sites=llm.chat+nope",  # unknown site
        "rate=1.5",                # rate out of range
    ])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_empty_sites_cover_everything(self):
        plan = FaultPlan(rate=0.1)
        for site in ("llm.chat", "lp.solve", "parallel.task", "tunnel_cache.get"):
            assert plan.covers(site)
        assert not FaultPlan(rate=0.1, sites=("lp.solve",)).covers("llm.chat")

    def test_kinds_at_respects_site_support(self):
        # parallel.task only supports TRANSIENT; asking for timeouts
        # there yields nothing rather than an unsupported fault.
        plan = FaultPlan(rate=1.0, kinds=(FaultKind.TIMEOUT,))
        assert plan.kinds_at("parallel.task") == ()
        assert plan.kinds_at("lp.solve") == (FaultKind.TIMEOUT,)


class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        plan = FaultPlan(seed=11, rate=0.3)
        decisions = [
            FaultInjector(plan).decide("llm.chat", key=f"k{i}")
            for i in range(200)
        ]
        replayed = [
            FaultInjector(plan).decide("llm.chat", key=f"k{i}")
            for i in range(200)
        ]
        assert decisions == replayed
        assert any(d is not None for d in decisions)
        assert any(d is None for d in decisions)

    def test_different_seed_different_schedule(self):
        keys = [f"k{i}" for i in range(200)]
        a = FaultInjector(FaultPlan(seed=1, rate=0.3))
        b = FaultInjector(FaultPlan(seed=2, rate=0.3))
        assert [a.decide("llm.chat", k) for k in keys] != [
            b.decide("llm.chat", k) for k in keys
        ]

    def test_rate_extremes(self):
        always = FaultInjector(FaultPlan(seed=0, rate=1.0))
        never = FaultInjector(FaultPlan(seed=0, rate=0.0))
        for i in range(50):
            assert always.decide("lp.solve", key=f"k{i}") is not None
            assert never.decide("lp.solve", key=f"k{i}") is None

    def test_site_filter(self):
        injector = FaultInjector(FaultPlan(rate=1.0, sites=("lp.solve",)))
        assert injector.decide("llm.chat", key="k") is None
        assert injector.decide("lp.solve", key="k") is not None

    def test_auto_key_counters_replay_serially(self):
        plan = FaultPlan(seed=5, rate=0.4)
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        schedule = [first.decide("lp.solve", prefix="fast|m") for _ in range(40)]
        assert schedule == [
            second.decide("lp.solve", prefix="fast|m") for _ in range(40)
        ]

    def test_maybe_fail_raises_raising_kinds(self):
        transient = FaultInjector(
            FaultPlan(rate=1.0, kinds=(FaultKind.TRANSIENT,))
        )
        with pytest.raises(TransientFault):
            transient.maybe_fail("lp.solve", key="k")
        timeout = FaultInjector(FaultPlan(rate=1.0, kinds=(FaultKind.TIMEOUT,)))
        with pytest.raises(InjectedTimeout):
            timeout.maybe_fail("lp.solve", key="k")

    def test_maybe_fail_returns_response_kinds(self):
        injector = FaultInjector(
            FaultPlan(rate=1.0, kinds=(FaultKind.TRUNCATE,))
        )
        assert injector.maybe_fail("llm.chat", key="k") is FaultKind.TRUNCATE

    def test_records_and_summary(self):
        injector = FaultInjector(FaultPlan(seed=2, rate=1.0))
        for i in range(3):
            injector.decide("parallel.task", key=f"task{i}")
        assert len(injector.records()) == 3
        summary = injector.summary()
        assert "3 injected" in summary
        assert "parallel.task transient: 3" in summary

    def test_injection_metric(self):
        obs.metrics.reset()
        FaultInjector(FaultPlan(rate=1.0)).decide("lp.solve", key="k")
        snap = obs.metrics.snapshot()
        assert snap["faults.injected"]["value"] == 1
        assert snap["faults.injected.lp.solve"]["value"] == 1


class TestInstallation:
    def test_off_by_default(self):
        assert active() is None

    def test_install_uninstall(self):
        injector = install(FaultPlan(rate=0.5))
        assert active() is injector
        assert uninstall() is injector
        assert active() is None

    def test_chaos_restores_previous(self):
        outer = install(FaultPlan(rate=0.1))
        with chaos(FaultPlan(rate=0.9)) as inner:
            assert active() is inner
        assert active() is outer


# ----------------------------------------------------------------------
# Retry policy and circuit breaker
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientFault("lp.solve", "k")
            return "done"

        policy = RetryPolicy(max_attempts=3)
        assert policy.call(flaky, site="lp.solve", sleep=no_sleep) == "done"
        assert calls["n"] == 3

    def test_non_retryable_raises_immediately(self):
        def broken():
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            RetryPolicy(max_attempts=5).call(broken, sleep=no_sleep)

    def test_exhaustion_raises_with_cause(self):
        def always():
            raise TransientFault("lp.solve", "k")

        with pytest.raises(RetryExhaustedError) as info:
            RetryPolicy(max_attempts=2).call(
                always, site="lp.solve", sleep=no_sleep
            )
        assert info.value.attempts == 2
        assert isinstance(info.value.__cause__, TransientFault)

    def test_retry_metrics(self):
        obs.metrics.reset()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientFault("lp.solve", "k")
            return 1

        RetryPolicy(max_attempts=2).call(flaky, site="lp.solve", sleep=no_sleep)
        snap = obs.metrics.snapshot()
        assert snap["retries"]["value"] == 1
        assert snap['retries{site="lp.solve"}']["value"] == 1

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            base_delay=0.01, multiplier=2.0, max_delay=0.05, jitter=0.5, seed=9
        )
        delays = [policy.backoff_delay(attempt, "key") for attempt in (1, 2, 3, 4)]
        assert delays == [
            policy.backoff_delay(attempt, "key") for attempt in (1, 2, 3, 4)
        ]
        for attempt, delay in enumerate(delays, start=1):
            raw = min(0.01 * 2.0 ** (attempt - 1), 0.05)
            assert raw * 0.5 <= delay < raw * 1.5
        assert policy.backoff_delay(2, "key") != policy.backoff_delay(2, "other")

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, jitter=0.0)
        assert policy.backoff_delay(1) == pytest.approx(0.01)
        assert policy.backoff_delay(3) == pytest.approx(0.04)

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0}, {"base_delay": -1.0}, {"jitter": 2.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        obs.metrics.reset()
        breaker = CircuitBreaker(failure_threshold=2, cooldown=2)
        breaker.record_failure()
        breaker.allow()  # still closed
        breaker.record_failure()
        assert breaker.is_open
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        assert obs.metrics.snapshot()["breaker.open"]["value"] == 1

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2)
        breaker.record_failure()
        for _ in range(2):  # cooldown counted in rejected calls
            with pytest.raises(CircuitOpenError):
                breaker.allow()
        breaker.allow()  # the half-open probe passes
        breaker.record_success()
        assert not breaker.is_open
        breaker.allow()

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        breaker.allow()  # probe
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.allow()


# ----------------------------------------------------------------------
# The resilient LLM seam
# ----------------------------------------------------------------------
class StubLLM(LLMClient):
    """Deterministic inner client: counts calls, returns canned replies."""

    name = "stub"

    def __init__(self):
        self.calls = 0

    def chat(self, session, prompt):
        self.calls += 1
        response = LLMResponse(
            text="alpha beta gamma delta",
            artifacts=[CodeArtifact("comp", "python", "print(1)\n", 1)],
        )
        session.record(prompt, response)
        return response


def make_prompt():
    return Prompt(text="generate the component", kind=PromptKind.GENERATE)


def seed_with(fault_key: str, clean_key: str, site: str = "llm.chat") -> int:
    """A seed at rate 0.5 that faults ``fault_key`` but not ``clean_key``.

    Whether a call faults depends only on ``(seed, site, key)``, so the
    schedule found here replays exactly inside the wrapped client.
    """
    for seed in range(5000):
        injector = FaultInjector(FaultPlan(seed=seed, rate=0.5, sites=(site,)))
        if (
            injector.decide(site, key=fault_key) is not None
            and injector.decide(site, key=clean_key) is None
        ):
            return seed
    raise AssertionError("no seed found")  # pragma: no cover


class TestResilientLLMClient:
    def test_zero_fault_passthrough(self):
        inner = StubLLM()
        client = ResilientLLMClient(inner, sleep=no_sleep)
        session = ChatSession("s")
        response = client.chat(session, make_prompt())
        assert inner.calls == 1
        assert response.text == "alpha beta gamma delta"
        assert response.has_code and not response.truncated
        assert session.num_prompts == 1

    def test_transient_fault_is_retried(self):
        obs.metrics.reset()
        # Attempt 1 faults before the inner call, so the session has
        # recorded nothing when attempt 2 rolls its key.
        seed = seed_with("s|p0|a1", "s|p0|a2")
        inner = StubLLM()
        client = ResilientLLMClient(inner, sleep=no_sleep)
        plan = FaultPlan(
            seed=seed, rate=0.5, sites=("llm.chat",),
            kinds=(FaultKind.TRANSIENT,),
        )
        with chaos(plan):
            response = client.chat(ChatSession("s"), make_prompt())
        assert response.has_code
        assert inner.calls == 1  # the fault fired before the inner call
        assert obs.metrics.snapshot()["llm.retries"]["value"] == 1

    def test_gives_up_after_max_attempts(self):
        obs.metrics.reset()
        client = ResilientLLMClient(
            StubLLM(), policy=RetryPolicy(max_attempts=2), sleep=no_sleep
        )
        plan = FaultPlan(rate=1.0, sites=("llm.chat",), kinds=(FaultKind.TRANSIENT,))
        with chaos(plan):
            with pytest.raises(RetryExhaustedError) as info:
                client.chat(ChatSession("s"), make_prompt())
        assert isinstance(info.value, RESILIENCE_ERRORS)
        snap = obs.metrics.snapshot()
        assert snap["llm.giveups"]["value"] == 1
        assert snap["llm.retries"]["value"] == 1

    def test_truncation_degrades_into_reprompt(self):
        obs.metrics.reset()
        # Truncation happens AFTER the inner call recorded the exchange,
        # so the re-prompt attempt rolls a key with the bumped count.
        seed = seed_with("s|p0|a1", "s|p1|a2")
        inner = StubLLM()
        client = ResilientLLMClient(inner, sleep=no_sleep)
        plan = FaultPlan(
            seed=seed, rate=0.5, sites=("llm.chat",),
            kinds=(FaultKind.TRUNCATE,),
        )
        with chaos(plan):
            response = client.chat(ChatSession("s"), make_prompt())
        # Attempt 1 was truncated and re-prompted; attempt 2 was clean.
        assert inner.calls == 2
        assert response.has_code and not response.truncated
        assert obs.metrics.snapshot()["llm.retries"]["value"] == 1

    def test_truncation_with_no_budget_returns_flagged_reply(self):
        client = ResilientLLMClient(
            StubLLM(), policy=RetryPolicy(max_attempts=1), sleep=no_sleep
        )
        plan = FaultPlan(rate=1.0, sites=("llm.chat",), kinds=(FaultKind.TRUNCATE,))
        with chaos(plan):
            response = client.chat(ChatSession("s"), make_prompt())
        assert response.truncated
        assert not response.has_code
        assert response.text == "alpha beta gamma delta"[:11]  # half the prose

    def test_corruption_garbles_artifacts(self):
        client = ResilientLLMClient(StubLLM(), sleep=no_sleep)
        plan = FaultPlan(rate=1.0, sites=("llm.chat",), kinds=(FaultKind.CORRUPT,))
        with chaos(plan):
            response = client.chat(ChatSession("s"), make_prompt())
        assert "<<corrupted by fault injection>>" in response.artifacts[0].source

    def test_breaker_opens_after_repeated_giveups(self):
        client = ResilientLLMClient(
            StubLLM(),
            policy=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=2, cooldown=10),
            sleep=no_sleep,
        )
        plan = FaultPlan(rate=1.0, sites=("llm.chat",), kinds=(FaultKind.TRANSIENT,))
        with chaos(plan):
            for _ in range(2):
                with pytest.raises(RetryExhaustedError):
                    client.chat(ChatSession("s"), make_prompt())
            with pytest.raises(CircuitOpenError):
                client.chat(ChatSession("s"), make_prompt())


# ----------------------------------------------------------------------
# LP statuses, require_optimal, and fallback chains
# ----------------------------------------------------------------------
def feasible_model():
    model = Model("feasible")
    x = model.add_var(name="x", upper=4)
    model.add_constraint(x <= 3, name="cap")
    model.maximize(x)
    return model


def infeasible_model():
    model = Model("impossible")
    x = model.add_var(name="x", upper=1)
    model.add_constraint(x >= 2, name="conflict")
    model.maximize(x)
    return model


class RaisingBackend:
    name = "raising"

    def solve(self, model):
        raise RuntimeError("solver crashed")


class StatusBackend:
    """Returns a fixed non-OPTIMAL status without solving anything."""

    def __init__(self, status):
        self.name = f"status-{status.value}"
        self.status = status

    def solve(self, model):
        return SolveResult(
            status=self.status,
            objective=float("nan"),
            values=[0.0] * model.num_vars,
            iterations=7,
            backend_name=self.name,
        )


class TestSolveStatuses:
    def test_highs_iteration_limit_status_mapped(self):
        from repro.lp.backends import _STATUS_MAP

        assert _STATUS_MAP[1] is SolveStatus.ITERATION_LIMIT
        assert SolveStatus.ITERATION_LIMIT in RECOVERABLE_STATUSES
        assert SolveStatus.INFEASIBLE not in RECOVERABLE_STATUSES

    def test_require_optimal_passes_through_optimal(self):
        model = feasible_model()
        result = model.solve()
        assert result.require_optimal(model) is result

    def test_require_optimal_raises_with_model_stats(self):
        model = infeasible_model()
        result = model.solve()
        with pytest.raises(LPSolveError) as info:
            result.require_optimal(model)
        error = info.value
        assert error.status is SolveStatus.INFEASIBLE
        assert error.model_name == "impossible"
        assert error.num_vars == 1
        assert error.num_constraints == 1
        assert "status infeasible" in str(error)
        assert "1 vars, 1 constraints" in str(error)


class TestFallbackLPBackend:
    def test_default_chain_is_fast_then_slow(self):
        backend = FallbackLPBackend()
        assert backend.name == "fallback(fast-highs>slow-pulp)"

    def test_rescues_crashing_primary(self):
        obs.metrics.reset()
        backend = FallbackLPBackend(RaisingBackend(), FastLPBackend())
        result = backend.solve(feasible_model())
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(3.0)
        snap = obs.metrics.snapshot()
        assert snap["lp.fallback.errors"]["value"] == 1
        assert snap["lp.fallback.used"]["value"] == 1

    def test_recoverable_status_falls_through(self):
        backend = FallbackLPBackend(
            StatusBackend(SolveStatus.ITERATION_LIMIT), FastLPBackend()
        )
        assert backend.solve(feasible_model()).status is SolveStatus.OPTIMAL

    def test_infeasibility_is_never_masked(self):
        obs.metrics.reset()
        calls = []

        class SpyBackend(FastLPBackend):
            name = "spy"

            def solve(self, model):
                calls.append(model.name)
                return super().solve(model)

        backend = FallbackLPBackend(FastLPBackend(), SpyBackend())
        result = backend.solve(infeasible_model())
        assert result.status is SolveStatus.INFEASIBLE
        assert calls == []  # the fallback was never consulted
        assert "lp.fallback.used" not in obs.metrics.snapshot()

    def test_exhausted_chain_returns_last_honest_status(self):
        backend = FallbackLPBackend(
            StatusBackend(SolveStatus.ERROR),
            StatusBackend(SolveStatus.ITERATION_LIMIT),
        )
        result = backend.solve(feasible_model())
        assert result.status is SolveStatus.ITERATION_LIMIT
        with pytest.raises(LPSolveError):
            result.require_optimal(feasible_model())

    def test_exhausted_chain_of_crashes_raises(self):
        backend = FallbackLPBackend(RaisingBackend(), RaisingBackend())
        with pytest.raises(RuntimeError, match="all 2 LP backends failed"):
            backend.solve(feasible_model())

    def test_rescues_injected_lp_faults(self):
        # Fault the first lp.solve call only: the primary's attempt is
        # injected, the fallback's attempt (call #2) succeeds.
        plan = FaultPlan(seed=_first_call_faulting_seed(), rate=0.5,
                         sites=("lp.solve",))
        backend = FallbackLPBackend()
        with chaos(plan):
            result = backend.solve(feasible_model())
        assert result.status is SolveStatus.OPTIMAL

    def test_get_backend_aliases(self):
        assert isinstance(get_backend("fallback"), FallbackLPBackend)
        assert isinstance(get_backend("resilient"), FallbackLPBackend)

    def test_fallbacks_require_primary(self):
        with pytest.raises(ValueError):
            FallbackLPBackend(None, FastLPBackend())


def _first_call_faulting_seed() -> int:
    """Seed where the 1st lp.solve counter call faults and the 2nd not.

    The two chain backends share one model, so their injector keys are
    consecutive per-(site, prefix) counters.
    """
    for seed in range(5000):
        plan = FaultPlan(seed=seed, rate=0.5, sites=("lp.solve",))
        injector = FaultInjector(plan)
        first = injector.decide(
            "lp.solve", prefix="fast-highs|feasible") is not None
        second = injector.decide(
            "lp.solve", prefix="slow-pulp|feasible") is not None
        if first and not second:
            return seed
    raise AssertionError("no seed found")  # pragma: no cover


# ----------------------------------------------------------------------
# Registry end-to-end: non-OPTIMAL statuses through the solver layer
# ----------------------------------------------------------------------
class TestRegistryEndToEnd:
    def test_infeasible_surfaces_through_registry(self, probe_solver):
        from repro.te import registry

        from repro.netmodel.topology import Topology
        from repro.netmodel.traffic import TrafficMatrix

        topo = Topology("t")
        topo.add_node("a")
        traffic = TrafficMatrix({})
        with pytest.raises(LPSolveError) as info:
            registry.solve("infeasible-probe", topo, traffic)
        assert info.value.status is SolveStatus.INFEASIBLE

        # A fallback chain must not mask it either.
        with pytest.raises(LPSolveError):
            registry.solve("infeasible-probe", topo, traffic, backend="fallback")

    def test_unregister_removes_and_validates(self):
        from repro.te import registry

        with pytest.raises(registry.UnknownSolverError):
            registry.unregister("never-registered")

    @pytest.fixture
    def probe_solver(self):
        """Register a solver whose model is genuinely infeasible."""
        from repro.te import registry
        from repro.te.solution import TESolution

        def factory(backend=None, **_options):
            def run(topology, traffic):
                model = infeasible_model()
                result = model.solve(backend=backend).require_optimal(model)
                return TESolution(
                    solver="infeasible-probe",
                    objective=result.objective,
                    flow_per_commodity={},
                    lp_count=1,
                    status=result.status.value,
                )

            return run

        spec = registry.SolverSpec(
            "infeasible-probe", factory,
            registry.SolverCapabilities(uses_tunnels=False),
            "test probe: always builds an infeasible LP",
        )
        registry.register(spec)
        try:
            yield spec
        finally:
            registry.unregister("infeasible-probe")


# ----------------------------------------------------------------------
# Fail-soft fan-out and sweeps
# ----------------------------------------------------------------------
class TestRunOrderedCollect:
    def tasks(self):
        def boom():
            raise ValueError("bad point")

        return [lambda: 1, boom, lambda: 3]

    def test_collect_returns_structured_failures(self):
        results = run_ordered(self.tasks(), workers=1, on_error="collect")
        assert results[0] == 1 and results[2] == 3
        failure = results[1]
        assert isinstance(failure, TaskFailure)
        assert failure.index == 1
        assert failure.error == "ValueError"
        assert "bad point" in failure.message

    def test_collect_parity_serial_vs_parallel(self):
        serial = run_ordered(self.tasks(), workers=1, on_error="collect")
        parallel = run_ordered(self.tasks(), workers=3, on_error="collect")
        assert serial == parallel

    def test_collect_counts_metric(self):
        obs.metrics.reset()
        run_ordered(self.tasks(), workers=2, on_error="collect")
        assert obs.metrics.snapshot()["parallel.task_failures"]["value"] == 1

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            run_ordered([lambda: 1], on_error="ignore")

    def test_injected_task_faults_are_keyed_by_index(self):
        plan = FaultPlan(rate=1.0, sites=("parallel.task",))
        with chaos(plan) as injector:
            results = run_ordered(
                [lambda i=i: i for i in range(4)], workers=2, on_error="collect"
            )
        assert all(isinstance(r, TaskFailure) for r in results)
        assert sorted(record.key for record in injector.records()) == [
            "task0", "task1", "task2", "task3"
        ]


class TestFailSoftSweep:
    def test_sweep_collects_injected_faults(self):
        from repro.te.demandscale import scale_sweep
        from repro.netmodel.topology import Topology
        from repro.netmodel.traffic import TrafficMatrix

        topo = Topology("line")
        for node in ("a", "b"):
            topo.add_node(node)
        topo.add_bidi_link("a", "b", 10.0)
        traffic = TrafficMatrix({("a", "b"): 4.0})

        plan = FaultPlan(rate=1.0, sites=("parallel.task",))
        with chaos(plan):
            points = scale_sweep(
                topo, traffic, "pf4", [0.5, 1.0], on_error="collect"
            )
        assert all(isinstance(point, TaskFailure) for point in points)
        with chaos(plan):
            with pytest.raises(TransientFault):
                scale_sweep(topo, traffic, "pf4", [0.5, 1.0])


# ----------------------------------------------------------------------
# Fail-soft pipelines and chaos campaigns
# ----------------------------------------------------------------------
class TestChaosCampaign:
    def run_chaotic(self, spec):
        from repro.experiments import run_campaign

        obs.metrics.reset()
        with chaos(FaultPlan.parse(spec)):
            result = run_campaign(["ncflow", "rps"])
        retries = obs.metrics.snapshot().get("llm.retries", {}).get("value", 0)
        return result, retries

    def test_same_seed_is_byte_identical(self):
        spec = "rate=0.2,seed=7,sites=llm.chat"
        first, retries_a = self.run_chaotic(spec)
        second, retries_b = self.run_chaotic(spec)
        assert first.summary() == second.summary()
        assert retries_a == retries_b > 0

    def test_llm_giveups_degrade_not_crash(self):
        # rate=1.0 at the LLM seam: every run's chats give up, yet the
        # campaign completes with failed reports, not an exception.
        from repro.experiments import run_campaign

        with chaos(FaultPlan(rate=1.0, sites=("llm.chat",))):
            result = run_campaign(["rps"])
        assert result.num_runs == 1
        assert not result.failures  # degraded inside the pipeline...
        report = next(iter(result.reports.values()))
        assert not report.succeeded  # ...which reports honest failure
        assert report.metrics["llm_failures"] > 0

    def test_fanout_crashes_become_failure_records(self):
        from repro.experiments import run_campaign

        with chaos(FaultPlan(rate=1.0, sites=("parallel.task",))):
            result = run_campaign(["rps", "ncflow"])
        assert result.num_runs == 2
        assert result.num_failed_runs == 2
        for failure in result.failures.values():
            assert failure.error == "TransientFault"
        assert "CRASHED" in result.summary()
        assert "degraded: 2 of 2 runs" in result.summary()

    def test_on_error_raise_restores_crash_semantics(self):
        from repro.experiments import run_campaign

        with chaos(FaultPlan(rate=1.0, sites=("parallel.task",))):
            with pytest.raises(TransientFault):
                run_campaign(["rps"], on_error="raise")

    def test_zero_fault_campaign_unchanged(self):
        from repro.experiments import run_campaign

        result = run_campaign(["rps"])
        again = run_campaign(["rps"])
        assert not result.failures
        assert result.summary() == again.summary()
        assert next(iter(result.reports.values())).succeeded
