"""Tests for devices, FIB semantics and ACLs."""

import pytest

from repro.netmodel.headerspace import HEADER_BITS, HeaderSpace, Prefix
from repro.netmodel.rules import (
    AclAction,
    AclRule,
    Device,
    DROP_PORT,
    ForwardingRule,
    SELF_PORT,
)


def lpm(value, length, port):
    return ForwardingRule.lpm(Prefix(value, length), port)


class TestForwardingRule:
    def test_lpm_priority_is_length(self):
        rule = lpm(0x1000, 4, "a")
        assert rule.priority == 4


class TestDeviceLookup:
    def test_longest_prefix_wins(self):
        device = Device("r")
        device.add_rule(lpm(0x0000, 1, "short"))
        device.add_rule(lpm(0x0000, 4, "long"))
        assert device.lookup(0x0000) == "long"
        assert device.lookup(0x4000) == "short"

    def test_default_drop(self):
        device = Device("r")
        device.add_rule(lpm(0x0000, 1, "a"))
        assert device.lookup(0x8000) == DROP_PORT

    def test_tie_broken_by_insertion_order(self):
        device = Device("r")
        device.add_rule(ForwardingRule(Prefix(0x0000, 4), "first", 9))
        device.add_rule(ForwardingRule(Prefix(0x0000, 4), "second", 9))
        assert device.lookup(0x0000) == "first"

    def test_rules_sorted_by_priority(self):
        device = Device("r")
        device.add_rule(lpm(0, 1, "a"))
        device.add_rule(lpm(0, 3, "b"))
        device.add_rule(lpm(0, 2, "c"))
        priorities = [rule.priority for rule in device.rules]
        assert priorities == [3, 2, 1]

    def test_remove_rule(self):
        device = Device("r")
        rule = lpm(0, 2, "a")
        device.add_rule(rule)
        device.remove_rule(rule)
        assert device.num_rules == 0
        with pytest.raises(ValueError):
            device.remove_rule(rule)


class TestForwardingSpace:
    def test_partition_over_ports(self):
        device = Device("r")
        device.add_rule(lpm(0x0000, 2, "a"))
        device.add_rule(lpm(0x0000, 4, "b"))
        device.add_rule(lpm(0x8000, 1, SELF_PORT))
        spaces = [
            device.forwarding_space(port)
            for port in ("a", "b", SELF_PORT, DROP_PORT)
        ]
        union = HeaderSpace.empty()
        total = 0
        for space in spaces:
            assert space.intersect(union).is_empty, "port spaces must be disjoint"
            union = union.union(space)
            total += len(space)
        assert total == 1 << HEADER_BITS

    def test_shadowing(self):
        device = Device("r")
        device.add_rule(lpm(0x0000, 2, "a"))
        device.add_rule(lpm(0x0000, 4, "b"))
        space_a = device.forwarding_space("a")
        space_b = device.forwarding_space("b")
        assert len(space_b) == 1 << (HEADER_BITS - 4)
        assert len(space_a) == (1 << (HEADER_BITS - 2)) - len(space_b)

    def test_matches_lookup_pointwise(self):
        device = Device("r")
        device.add_rule(lpm(0x0000, 1, "a"))
        device.add_rule(lpm(0x4000, 3, "b"))
        device.add_rule(lpm(0x0000, 3, DROP_PORT))
        for address in range(0, 1 << HEADER_BITS, 997):
            port = device.lookup(address)
            assert address in device.forwarding_space(port).addresses


class TestAcl:
    def test_default_permit(self):
        device = Device("r")
        assert device.acl_permits(123)
        assert not device.has_acl

    def test_first_match_wins(self):
        device = Device("r")
        device.add_acl_rule(AclRule(Prefix(0x0000, 2), AclAction.DENY, 10))
        device.add_acl_rule(AclRule(Prefix.full(), AclAction.PERMIT, 1))
        assert not device.acl_permits(0x0000)
        assert device.acl_permits(0x8000)

    def test_permit_space_matches_pointwise(self):
        device = Device("r")
        device.add_acl_rule(AclRule(Prefix(0x8000, 1), AclAction.DENY, 5))
        device.add_acl_rule(AclRule(Prefix(0xC000, 2), AclAction.PERMIT, 9))
        space = device.acl_permit_space()
        for address in range(0, 1 << HEADER_BITS, 991):
            assert device.acl_permits(address) == (address in space.addresses)

    def test_ports_lists_distinguished(self):
        device = Device("r")
        device.add_rule(lpm(0, 1, "n1"))
        assert DROP_PORT in device.ports()
        assert "n1" in device.ports()
