"""The service tier: job specs, worker pools, daemon, client, loadgen.

Contracts under test:

* **Determinism** -- a job's payload is a pure function of its spec;
  in-process and spawn-worker execution agree byte for byte, and the
  store key is stable across processes.
* **Isolation** -- a worker hard-crash (``os._exit``) or an over-budget
  job kills only that worker: the daemon records a structured failure,
  respawns the slot, and keeps serving.
* **Admission control** -- a full queue rejects with a structured
  ``queue-full`` document (HTTP 429) immediately, never by hanging; a
  store hit at admission completes the job without touching the queue.
* **Ordering** -- batch execution returns outcomes in submission order
  regardless of completion order.
"""

import threading
import time

import pytest

from repro import obs
from repro.fuzz import generators as fuzz_generators
from repro.fuzz import oracles as fuzz_oracles
from repro.serve import (
    InProcessPool,
    JOB_KINDS,
    JobSpec,
    JobTimeoutError,
    QueueFullError,
    ReproDaemon,
    ServeAPIError,
    ServeClient,
    WorkerPool,
    execute_job,
    execute_job_stored,
    job_key,
    loadgen_spec,
    run_jobs,
    run_loadgen,
)
from repro.store import ArtifactStore

#: One solve spec reused across tests so repeated executions exercise
#: the memoization path.
SOLVE_PARAMS = {
    "instance": "B4", "solver": "pf4", "commodities": 10, "load": 0.1,
}


# ----------------------------------------------------------------------
# Job specs and execution
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_validate_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            JobSpec("quantum", {}).validate()

    def test_validate_rejects_unknown_campaign_paper(self):
        with pytest.raises(ValueError):
            JobSpec("campaign", {"papers": ["ncflow", "nope"]}).validate()

    def test_validate_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            JobSpec("probe", {}, budget_seconds=0).validate()

    def test_canonical_params_fill_defaults(self):
        params = JobSpec("solve", {}).canonical_params()
        assert params["instance"] == "B4"
        assert params["solver"] == "pf4"

    def test_key_ignores_param_order_but_not_values(self):
        a = JobSpec("solve", {"instance": "B4", "solver": "pf4"})
        b = JobSpec("solve", {"solver": "pf4", "instance": "B4"})
        c = JobSpec("solve", {"instance": "Internet2", "solver": "pf4"})
        assert job_key(a) == job_key(b)
        assert job_key(a) != job_key(c)
        assert job_key(a).startswith("serve/1/solve/")

    def test_probe_jobs_have_no_store_key(self):
        assert job_key(JobSpec("probe", {"action": "ok"})) is None

    def test_roundtrip_through_dict(self):
        spec = JobSpec("verify", {"dataset": "Internet2"}, seed=3,
                       budget_seconds=9.0)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_execute_deterministic(self):
        spec = JobSpec("solve", SOLVE_PARAMS)
        assert execute_job(spec) == execute_job(spec)

    def test_execute_verify(self):
        payload = execute_job(JobSpec("verify", {"dataset": "Internet2"}))
        assert payload["ok"] and payload["loops"] == 0

    def test_execute_stored_memoizes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        spec = JobSpec("solve", SOLVE_PARAMS)
        first = execute_job_stored(spec, store)
        second = execute_job_stored(spec, store)
        assert first == second
        assert store.get(job_key(spec)) is not None

    def test_failed_probe_raises_and_is_not_stored(self, tmp_path):
        store = ArtifactStore(tmp_path)
        spec = JobSpec("probe", {"action": "error"})
        with pytest.raises(RuntimeError):
            execute_job_stored(spec, store)
        assert len(store.entries()) == 0


# ----------------------------------------------------------------------
# Pools
# ----------------------------------------------------------------------
class TestInProcessPool:
    def test_run_jobs_preserves_submission_order(self, tmp_path):
        specs = [
            JobSpec("probe", {"action": "sleep", "seconds": 0.2}, seed=0),
            JobSpec("probe", {"action": "ok"}, seed=1),
            JobSpec("probe", {"action": "ok"}, seed=2),
        ]
        outcomes = run_jobs(specs, workers=3, mode="inprocess",
                            store_root=str(tmp_path))
        assert [o.job_id for o in outcomes] == [0, 1, 2]
        assert [o.payload["seed"] for o in outcomes] == [0, 1, 2]

    def test_error_job_is_structured_not_fatal(self, tmp_path):
        outcomes = run_jobs(
            [JobSpec("probe", {"action": "error"}),
             JobSpec("probe", {"action": "ok"})],
            workers=1, mode="inprocess", store_root=str(tmp_path),
        )
        assert not outcomes[0].ok
        assert outcomes[0].failure == "error"
        assert outcomes[0].error == "RuntimeError"
        assert outcomes[1].ok

    def test_budget_abandons_job(self, tmp_path):
        outcomes = run_jobs(
            [JobSpec("probe", {"action": "sleep", "seconds": 30},
                     budget_seconds=0.2)],
            workers=1, mode="inprocess", store_root=str(tmp_path),
        )
        assert not outcomes[0].ok
        assert outcomes[0].failure == "budget"


class TestWorkerPool:
    def test_multiprocess_matches_inprocess_payloads(self, tmp_path):
        specs = [
            JobSpec("solve", SOLVE_PARAMS),
            JobSpec("verify", {"dataset": "Internet2"}),
            JobSpec("probe", {"action": "ok"}, seed=7),
            JobSpec("probe", {"action": "spin", "iterations": 2000},
                    seed=11),
        ]
        inproc = run_jobs(specs, workers=2, mode="inprocess",
                          store_root=str(tmp_path / "a"))
        mp = run_jobs(specs, workers=2, mode="process",
                      store_root=str(tmp_path / "b"))
        assert [o.payload for o in inproc] == [o.payload for o in mp]

    def test_survives_worker_hard_crash(self, tmp_path):
        pool = WorkerPool(workers=1, store_root=str(tmp_path))
        pool.start()
        try:
            pool.submit(0, JobSpec("probe", {"action": "crash"}))
            outcome = self._drain_one(pool)
            assert not outcome.ok
            assert outcome.failure == "crash"
            assert outcome.error == "WorkerCrashed"
            assert "13" in outcome.message
            assert pool.restarts == 1
            # The respawned worker still serves jobs.
            pool.submit(1, JobSpec("probe", {"action": "ok"}, seed=4))
            outcome = self._drain_one(pool)
            assert outcome.ok and outcome.payload["seed"] == 4
        finally:
            pool.shutdown()

    def test_over_budget_job_is_killed_and_recorded(self, tmp_path):
        pool = WorkerPool(workers=1, store_root=str(tmp_path))
        pool.start()
        try:
            pool.submit(0, JobSpec("probe",
                                   {"action": "sleep", "seconds": 30},
                                   budget_seconds=0.5))
            outcome = self._drain_one(pool)
            assert not outcome.ok
            assert outcome.failure == "budget"
            assert outcome.error == "JobBudgetExceeded"
            assert pool.restarts == 1
        finally:
            pool.shutdown()

    def test_saturated_pool_rejects_submit(self, tmp_path):
        pool = WorkerPool(workers=1, store_root=str(tmp_path))
        pool.start()
        try:
            pool.submit(0, JobSpec("probe",
                                   {"action": "sleep", "seconds": 5}))
            with pytest.raises(RuntimeError):
                pool.submit(1, JobSpec("probe", {"action": "ok"}))
        finally:
            pool.shutdown()

    @staticmethod
    def _drain_one(pool, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            outcomes = pool.poll(0.1)
            if outcomes:
                return outcomes[0]
        raise AssertionError("no outcome within timeout")


# ----------------------------------------------------------------------
# Daemon + client (inprocess mode: fast, no spawn cost)
# ----------------------------------------------------------------------
class TestDaemon:
    def test_submit_wait_result_roundtrip(self):
        with ReproDaemon(mode="inprocess", workers=2) as daemon:
            client = ServeClient(daemon.url)
            assert client.health()["status"] == "ok"
            record = client.submit("solve", SOLVE_PARAMS)
            final = client.wait(record["id"], timeout=60)
            assert final["state"] == "completed"
            payload = client.result(final["id"])["payload"]
            assert payload["status"] == "optimal"

    def test_queue_full_rejection_is_structured_not_a_hang(self):
        with ReproDaemon(mode="inprocess", workers=1,
                         queue_limit=1) as daemon:
            client = ServeClient(daemon.url)
            rejected = None
            accepted = []
            started = time.monotonic()
            for index in range(6):
                try:
                    accepted.append(client.submit(
                        "probe", {"action": "sleep", "seconds": 0.5},
                        seed=index,
                    ))
                except ServeAPIError as exc:
                    rejected = exc
                    break
            # A rejection arrived quickly (no hang) and is structured.
            assert rejected is not None
            assert time.monotonic() - started < 5.0
            assert rejected.status == 429 and rejected.queue_full
            assert rejected.payload["error"] == "queue-full"
            assert rejected.payload["queue_limit"] == 1
            # Already-accepted jobs still drain to completion.
            for record in accepted:
                assert client.wait(record["id"],
                                   timeout=60)["state"] == "completed"

    def test_queue_full_raises_locally_too(self):
        daemon = ReproDaemon(mode="inprocess", workers=1, queue_limit=1)
        daemon.start()
        try:
            # Sleep jobs saturate the single worker and then the
            # one-slot queue; within a handful of submissions one must
            # be refused with the structured payload.
            with pytest.raises(QueueFullError) as excinfo:
                for index in range(6):
                    daemon.submit(
                        "probe", {"action": "sleep", "seconds": 1},
                        seed=index,
                    )
            assert excinfo.value.payload["error"] == "queue-full"
        finally:
            daemon.stop()

    def test_failed_job_result_is_409(self):
        with ReproDaemon(mode="inprocess", workers=1) as daemon:
            client = ServeClient(daemon.url)
            record = client.submit("probe", {"action": "error"})
            final = client.wait(record["id"], timeout=60)
            assert final["state"] == "failed"
            assert final["failure_kind"] == "error"
            with pytest.raises(ServeAPIError) as excinfo:
                client.result(record["id"])
            assert excinfo.value.status == 409
            assert excinfo.value.payload["error"] == "job-not-completed"

    def test_bad_submission_is_400(self):
        with ReproDaemon(mode="inprocess", workers=1) as daemon:
            with pytest.raises(ServeAPIError) as excinfo:
                ServeClient(daemon.url).submit("quantum", {})
            assert excinfo.value.status == 400

    def test_default_budget_applies_to_unbudgeted_jobs(self):
        with ReproDaemon(mode="inprocess", workers=1,
                         default_budget=0.3) as daemon:
            client = ServeClient(daemon.url)
            record = client.submit("probe",
                                   {"action": "sleep", "seconds": 30})
            final = client.wait(record["id"], timeout=60)
            assert final["state"] == "failed"
            assert final["failure_kind"] == "budget"

    def test_repeat_submission_hits_store_at_admission(self, tmp_path):
        obs.metrics.reset()
        store = ArtifactStore(tmp_path)
        with ReproDaemon(mode="inprocess", workers=1,
                         store=store) as daemon:
            client = ServeClient(daemon.url)
            first = client.submit("verify", {"dataset": "Internet2"})
            assert client.wait(first["id"],
                               timeout=120)["state"] == "completed"
            again = client.submit("verify", {"dataset": "Internet2"})
            # Answered at admission: terminal immediately, marked cached.
            assert again["state"] == "completed"
            assert again["cached"] is True
        snapshot = obs.metrics.snapshot()
        hits = sum(
            snap["value"] for name, snap in snapshot.items()
            if name.startswith("store.hit")
            and snap.get("type") == "counter" and "labels" not in snap
        )
        assert hits > 0

    def test_cached_admission_bypasses_queue_limit(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with ReproDaemon(mode="inprocess", workers=1, queue_limit=1,
                         store=store) as daemon:
            client = ServeClient(daemon.url)
            warm = client.submit("verify", {"dataset": "Internet2"})
            assert client.wait(warm["id"],
                               timeout=120)["state"] == "completed"
            # Saturate the worker and fill the queue until a fresh
            # submission is refused.
            saturated = False
            for index in range(6):
                try:
                    client.submit(
                        "probe", {"action": "sleep", "seconds": 1},
                        seed=index,
                    )
                except ServeAPIError as exc:
                    assert exc.queue_full
                    saturated = True
                    break
            assert saturated
            # The cached job is still admitted and completes instantly.
            cached = client.submit("verify", {"dataset": "Internet2"})
            assert cached["state"] == "completed" and cached["cached"]

    def test_jobs_listing_and_stats(self):
        with ReproDaemon(mode="inprocess", workers=1) as daemon:
            client = ServeClient(daemon.url)
            record = client.submit("probe", {"action": "ok"})
            client.wait(record["id"], timeout=60)
            listing = client.jobs()
            assert listing and listing[0]["id"] == record["id"]
            stats = client.stats()
            assert stats["mode"] == "inprocess"
            assert stats["jobs"]["completed"] >= 1

    def test_metrics_endpoint_exposes_serve_families(self):
        obs.metrics.reset()
        with ReproDaemon(mode="inprocess", workers=1) as daemon:
            client = ServeClient(daemon.url)
            record = client.submit("probe", {"action": "ok"})
            client.wait(record["id"], timeout=60)
            text = client.metrics_text()
        assert 'serve_jobs{state="completed"}' in text
        assert "serve_job_seconds" in text

    def test_shutdown_endpoint_requests_stop(self):
        daemon = ReproDaemon(mode="inprocess", workers=1)
        daemon.start()
        try:
            reply = ServeClient(daemon.url).shutdown()
            assert reply["status"] == "stopping"
            assert daemon.shutdown_requested.wait(timeout=5.0)
        finally:
            daemon.stop()

    def test_daemon_survives_worker_crash(self, tmp_path):
        # The headline resilience claim, through the whole stack: a job
        # that hard-kills its spawn worker is recorded as failed and
        # the daemon keeps answering.
        with ReproDaemon(mode="process", workers=1,
                         store=ArtifactStore(tmp_path)) as daemon:
            client = ServeClient(daemon.url)
            record = client.submit("probe", {"action": "crash"})
            final = client.wait(record["id"], timeout=120)
            assert final["state"] == "failed"
            assert final["failure_kind"] == "crash"
            after = client.submit("probe", {"action": "ok"}, seed=9)
            assert client.wait(after["id"],
                               timeout=120)["state"] == "completed"
            assert client.stats()["worker_restarts"] == 1


# ----------------------------------------------------------------------
# Loadgen
# ----------------------------------------------------------------------
class TestLoadgen:
    def test_specs_are_deterministic_and_valid(self):
        for kind in ("mix", "probe", "solve", "verify", "campaign"):
            for index in range(10):
                spec = loadgen_spec(kind, index)
                spec.validate()
                assert spec == loadgen_spec(kind, index)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            loadgen_spec("quantum", 0)

    def test_run_against_live_daemon(self, tmp_path):
        with ReproDaemon(mode="inprocess", workers=2,
                         store=ArtifactStore(tmp_path)) as daemon:
            report = run_loadgen(daemon.url, jobs=15, concurrency=4,
                                 timeout=120)
        assert report.ok
        assert report.completed == 15
        assert report.jobs_per_second > 0
        # The mix repeats specs, so with a store some jobs were cached.
        assert report.cached > 0
        assert report.percentile(99) >= report.percentile(50) >= 0
        assert "jobs/s" in report.render()

    def test_rejections_are_retried_not_lost(self):
        with ReproDaemon(mode="inprocess", workers=1,
                         queue_limit=1) as daemon:
            report = run_loadgen(daemon.url, jobs=10, concurrency=5,
                                 kind="probe", timeout=120)
        assert report.completed == 10
        assert report.rejections > 0


# ----------------------------------------------------------------------
# Fuzz integration (the campaign differential oracle)
# ----------------------------------------------------------------------
class TestCampaignOracle:
    def test_campaign_case_generates_and_materializes(self):
        case = fuzz_generators.generate_case(7, 0, "campaign")
        assert case.data["papers"]
        spec = fuzz_generators.materialize_campaign(case.data)
        spec.validate()
        assert spec.kind == "campaign"
        sizes = fuzz_generators.case_sizes(case.data)
        assert sizes["papers"] == len(case.data["papers"])

    def test_oracle_is_registered_for_campaign_kind(self):
        names = [
            spec.name
            for spec in fuzz_oracles.specs_for_kind("campaign")
        ]
        assert "campaign.multiprocess-vs-inprocess" in names

    def test_oracle_passes_on_schedule_case(self):
        case = fuzz_generators.generate_case(7, 0, "campaign")
        fuzz_oracles.run_oracle(
            "campaign.multiprocess-vs-inprocess", case
        )
