"""Tests for the sharded data-plane verification subsystem.

Covers the canonical interval algebra (against brute-force bit sets and
BDD satcounts), the deterministic partitioner, the byte-identity of
sharded and streamed answers with the unsharded
:class:`~repro.ap.verifier.APVerifier` (named datasets, a hypothesis
property over random data planes, and post-update-burst state), BDD
node-table shard locality, store-backed warm reuse across verifier
instances, the serve ``verify``/``shard-build`` job kinds, and the
codec round trip that carries datasets to spawn workers.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.netmodel.datasets import (
    build_large_dataset,
    build_verification_dataset,
    random_dataset,
)
from repro.netmodel.headerspace import HEADER_BITS, Prefix
from repro.netmodel.rules import ForwardingRule
from repro.shard import (
    MODES,
    NetworkPartitioner,
    ShardVerifier,
    StreamingVerifier,
    build_shard_artifact,
    check_artifact,
    dataset_fingerprint,
    dataset_from_doc,
    dataset_to_doc,
    documents_equal,
    intervals,
    whole_reference_document,
)
from repro.store import ArtifactStore

FUZZ_SETTINGS = dict(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

FULL_SPACE = 1 << HEADER_BITS


def interval_members(iset):
    """Expand an interval set to its member-address set (tests only)."""
    out = set()
    for start, end in iset:
        out.update(range(start, end))
    return out


class TestIntervalAlgebra:
    @given(st.lists(
        st.tuples(st.integers(0, FULL_SPACE - 1), st.integers(1, 300)),
        max_size=6,
    ), st.lists(
        st.tuples(st.integers(0, FULL_SPACE - 1), st.integers(1, 300)),
        max_size=6,
    ))
    @settings(max_examples=60, deadline=None)
    def test_set_operations_match_brute_force(self, raw_a, raw_b):
        a = intervals.normalize(
            (s, min(s + n, FULL_SPACE)) for s, n in raw_a
        )
        b = intervals.normalize(
            (s, min(s + n, FULL_SPACE)) for s, n in raw_b
        )
        set_a, set_b = interval_members(a), interval_members(b)
        assert interval_members(intervals.union(a, b)) == set_a | set_b
        assert interval_members(intervals.intersect(a, b)) == set_a & set_b
        assert interval_members(intervals.difference(a, b)) == set_a - set_b
        assert intervals.total(a) == len(set_a)

    def test_normalize_merges_adjacent_and_overlapping(self):
        got = intervals.normalize([(10, 20), (20, 30), (5, 12), (40, 41)])
        assert got == ((5, 30), (40, 41))

    def test_json_round_trip(self):
        iset = ((0, 7), (9, 200))
        assert intervals.from_json(intervals.to_json(iset)) == iset

    def test_prefix_to_intervals(self):
        prefix = Prefix(0x8000, 1)
        assert intervals.prefix_to_intervals(prefix) == (
            (0x8000, FULL_SPACE),
        )
        assert intervals.prefix_to_intervals(Prefix(0, 0)) == intervals.FULL

    @given(st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_bdd_to_intervals_matches_satcount(self, seed):
        import numpy as np

        from repro.bdd.builder import new_engine, prefix_to_bdd

        rng = np.random.RandomState(seed)
        engine = new_engine("jdd")
        acc = prefix_to_bdd(engine, _random_prefix(rng))
        for _ in range(3):
            node = prefix_to_bdd(engine, _random_prefix(rng))
            acc = [engine.or_, engine.and_, engine.diff][
                int(rng.randint(3))
            ](acc, node)
        found = intervals.bdd_to_intervals(engine, acc)
        assert intervals.total(found) == engine.satcount(acc)


def _random_prefix(rng):
    length = int(rng.randint(0, HEADER_BITS + 1))
    bits = int(rng.randint(0, 1 << length)) if length else 0
    return Prefix(bits << (HEADER_BITS - length), length)


class TestPartitioner:
    def test_deterministic_and_total(self):
        dataset = build_verification_dataset("Internet2")
        for strategy in ("contiguous", "bfs"):
            plans = [
                NetworkPartitioner(3, strategy).partition(dataset)
                for _ in range(2)
            ]
            assert plans[0] == plans[1]
            plan = plans[0]
            assert plan.num_devices == len(dataset.devices)
            covered = sorted(
                device for shard in plan.members for device in shard
            )
            assert covered == sorted(dataset.devices)

    def test_boundary_links_cross_shards(self):
        dataset = build_verification_dataset("Internet2")
        plan = NetworkPartitioner(3).partition(dataset)
        for src, dst in plan.boundary:
            assert plan.shard_of[src] != plan.shard_of[dst]
        intra = set(plan.links) - set(plan.boundary)
        for src, dst in intra:
            assert plan.shard_of[src] == plan.shard_of[dst]

    def test_shard_count_clamped_to_devices(self):
        dataset = random_dataset(num_nodes=3, rules_per_device=2, seed=1)
        plan = NetworkPartitioner(10).partition(dataset)
        assert plan.num_shards == 3
        assert all(len(shard) == 1 for shard in plan.members)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            NetworkPartitioner(0)
        with pytest.raises(ValueError):
            NetworkPartitioner(2, strategy="metis")


class TestShardedEqualsWhole:
    @pytest.mark.parametrize("name", ["Internet2", "Stanford"])
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_named_datasets_byte_identical(self, name, shards):
        dataset = build_verification_dataset(name)
        sources = sorted(dataset.devices)[:3]
        whole = whole_reference_document(dataset, sources=sources)
        verifier = ShardVerifier(dataset, shards=shards)
        assert documents_equal(
            verifier.comparison_document(sources), whole
        )

    @settings(**FUZZ_SETTINGS)
    @given(st.integers(0, 2 ** 31 - 1), st.integers(2, 4))
    def test_random_dataplanes_byte_identical(self, seed, shards):
        dataset = random_dataset(
            num_nodes=6, rules_per_device=5, seed=seed, acl_fraction=0.4,
            name=f"prop-{seed}",
        )
        sources = sorted(dataset.devices)[:2]
        whole = whole_reference_document(dataset, sources=sources)
        for strategy in ("contiguous", "bfs"):
            verifier = ShardVerifier(
                dataset, shards=shards, strategy=strategy
            )
            assert documents_equal(
                verifier.comparison_document(sources), whole
            )

    def test_padding_is_semantically_inert(self):
        plain = build_verification_dataset("Internet2")
        padded = build_verification_dataset(
            "Internet2", rules_per_device=200
        )
        assert padded.total_rules > 2 * plain.total_rules
        assert documents_equal(
            whole_reference_document(plain),
            whole_reference_document(padded),
        )

    def test_unknown_source_raises(self):
        dataset = build_verification_dataset("Internet2")
        verifier = ShardVerifier(dataset, shards=2)
        with pytest.raises(KeyError):
            verifier.reachability("not-a-device")


class TestShardLocality:
    def test_engine_stats_independent_of_fleet(self):
        dataset = build_verification_dataset("Internet2")
        plan = NetworkPartitioner(3).partition(dataset)
        fleet = ShardVerifier(dataset, shards=3)
        for index, members in enumerate(plan.members):
            alone = build_shard_artifact(dataset, list(members), index)
            assert alone["engine"] == fleet.engine_stats()[index]

    def test_engines_have_distinct_node_tables(self):
        # Different shards do different BDD work: if the engines shared
        # a node table the per-shard stats would be coupled (monotone
        # across the fleet); instead each reports only its own nodes.
        dataset = build_verification_dataset("Stanford")
        verifier = ShardVerifier(dataset, shards=2)
        stats = verifier.engine_stats()
        total = sum(s["num_nodes"] for s in stats)
        for s in stats:
            assert 0 < s["num_nodes"] < total

    def test_modes_agree(self):
        dataset = build_verification_dataset("Internet2")
        sources = sorted(dataset.devices)[:2]
        docs = [
            ShardVerifier(dataset, shards=2, mode=mode).comparison_document(
                sources
            )
            for mode in ("serial", "inprocess")
        ]
        assert documents_equal(docs[0], docs[1])
        assert set(MODES) == {"serial", "inprocess", "process"}


class TestStreaming:
    def _burst(self, dataset, count=8):
        import numpy as np

        rng = np.random.RandomState(9)
        nodes = sorted(dataset.devices)
        burst = []
        for k in range(count):
            node = nodes[int(rng.randint(len(nodes)))]
            ports = dataset.topology.successors(node)
            rule = ForwardingRule(
                _random_prefix(rng), ports[int(rng.randint(len(ports)))],
                priority=60 + k,
            )
            burst.append(("insert", node, rule))
        return burst

    def test_stream_matches_batch_after_burst(self):
        dataset = random_dataset(
            num_nodes=7, rules_per_device=5, seed=21, acl_fraction=0.3,
            name="stream-eq",
        )
        streamer = StreamingVerifier(dataset, shards=3)
        mutated = dataset.copy()
        for operation, device, rule in self._burst(dataset):
            record = streamer.apply(operation, device, rule)
            assert record["shard"] == streamer.plan.shard_of[device]
            mutated.devices[device].add_rule(rule)
        assert documents_equal(
            streamer.comparison_document(),
            whole_reference_document(mutated),
        )

    def test_update_touches_owning_shard_only(self):
        dataset = random_dataset(
            num_nodes=6, rules_per_device=4, seed=4, name="stream-local"
        )
        streamer = StreamingVerifier(dataset, shards=3)
        before = list(streamer.export_counts)
        device = streamer.plan.members[1][0]
        port = dataset.topology.successors(device)[0]
        streamer.apply(
            "insert", device,
            ForwardingRule(Prefix(0, 0), port, priority=70),
        )
        after = streamer.export_counts
        assert after[1] == before[1] + 1
        assert after[0] == before[0] and after[2] == before[2]

    def test_latency_stats_and_metrics(self):
        obs.metrics.reset()
        dataset = random_dataset(
            num_nodes=5, rules_per_device=4, seed=6, name="stream-lat"
        )
        streamer = StreamingVerifier(
            dataset, shards=2, sources=sorted(dataset.devices)[:1]
        )
        report = streamer.apply_burst(self._burst(dataset, count=6))
        assert report["burst"] == 6
        assert report["count"] == 6
        assert 0 < report["p50"] <= report["p95"] <= report["max"]
        snapshot = obs.metrics.snapshot()
        assert snapshot["shard.stream.updates"]["value"] == 6

    def test_unknown_device_and_operation_rejected(self):
        dataset = random_dataset(num_nodes=4, rules_per_device=3, seed=2)
        streamer = StreamingVerifier(dataset, shards=2)
        rule = ForwardingRule(Prefix(0, 0), "drop", priority=1)
        with pytest.raises(KeyError):
            streamer.apply("insert", "nope", rule)
        with pytest.raises(ValueError):
            streamer.apply("upsert", sorted(dataset.devices)[0], rule)
        with pytest.raises(KeyError):
            StreamingVerifier(dataset, shards=2, sources=["nope"])


class TestStoreReuse:
    def test_warm_store_skips_all_builds(self, tmp_path):
        obs.metrics.reset()
        dataset = build_verification_dataset("Internet2")
        store = ArtifactStore(tmp_path / "store")
        cold = ShardVerifier(dataset, shards=3, store=store)
        assert cold.store_hits == 0
        warm = ShardVerifier(dataset, shards=3, store=store)
        assert warm.store_hits == 3
        assert documents_equal(
            warm.comparison_document(), cold.comparison_document()
        )
        snapshot = obs.metrics.snapshot()
        assert snapshot['store.hit{category="shard"}']["value"] == 3

    def test_store_key_sensitive_to_plan(self, tmp_path):
        dataset = build_verification_dataset("Internet2")
        store = ArtifactStore(tmp_path / "store")
        ShardVerifier(dataset, shards=2, store=store)
        other = ShardVerifier(dataset, shards=3, store=store)
        assert other.store_hits == 0

    def test_stale_artifact_rejected(self):
        dataset = build_verification_dataset("Internet2")
        members = sorted(dataset.devices)[:2]
        artifact = build_shard_artifact(dataset, members, 0)
        check_artifact(artifact, members)
        with pytest.raises(ValueError):
            check_artifact(artifact, members[:1])
        with pytest.raises(ValueError):
            check_artifact({**artifact, "schema": "repro.shard/0"})


class TestCodec:
    def test_round_trip_preserves_fingerprint(self):
        dataset = random_dataset(
            num_nodes=5, rules_per_device=6, seed=13, acl_fraction=0.5,
            name="codec",
        )
        rebuilt = dataset_from_doc(dataset_to_doc(dataset))
        assert dataset_fingerprint(rebuilt) == dataset_fingerprint(dataset)
        assert documents_equal(
            whole_reference_document(rebuilt),
            whole_reference_document(dataset),
        )

    def test_fingerprint_tracks_content_not_name(self):
        a = random_dataset(num_nodes=4, rules_per_device=3, seed=1, name="x")
        b = random_dataset(num_nodes=4, rules_per_device=3, seed=2, name="x")
        assert dataset_fingerprint(a) != dataset_fingerprint(b)


class TestServeIntegration:
    def test_verify_job_gains_shards_param(self):
        from repro.serve.jobs import JobSpec, execute_job

        spec = JobSpec("verify", {"dataset": "Internet2", "shards": 3})
        payload = execute_job(spec)
        assert payload["ok"]
        assert payload["shards"] == 3
        assert len(payload["atoms_per_shard"]) == 3
        whole = execute_job(
            JobSpec("verify", {"dataset": "Internet2"})
        )
        assert whole["ok"]
        assert "atoms_per_shard" not in whole

    def test_shard_build_job_kind(self):
        from repro.serve.jobs import JobSpec, execute_job

        dataset = build_verification_dataset("Internet2")
        members = sorted(dataset.devices)[:3]
        spec = JobSpec("shard-build", {
            "dataset_doc": dataset_to_doc(dataset),
            "members": members,
            "index": 0,
        })
        got = dict(execute_job(spec))
        assert got["ok"]
        reference = build_shard_artifact(dataset, members, 0)
        for key in ("build_seconds", "engine"):
            got.pop(key), reference.pop(key)
        assert json.dumps(got, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_shard_build_params_validated(self):
        from repro.serve.jobs import JobSpec

        with pytest.raises(ValueError):
            JobSpec("shard-build", {"dataset_doc": {}, "members": []}).validate()
        with pytest.raises(ValueError):
            JobSpec("verify", {"shards": 0}).validate()


class TestLargePreset:
    def test_large_preset_hits_target_deterministically(self):
        dataset = build_large_dataset("Airtel", target_rules=20_000)
        again = build_large_dataset("Airtel", target_rules=20_000)
        assert dataset.name == "Airtel-large"
        assert dataset.total_rules >= 20_000
        assert dataset_fingerprint(dataset) == dataset_fingerprint(again)

    def test_apkeep_latency_stats_report_p95(self):
        from repro.apkeep import APKeepVerifier

        verifier = APKeepVerifier(build_verification_dataset("Internet2"))
        stats = verifier.update_latency_stats()
        assert stats["count"] == len(verifier.updates)
        assert 0 <= stats["p50"] <= stats["p95"] <= stats["max"]
