"""The persistent artifact store and everything wired through it.

Contracts under test:

* **Integrity** -- every read re-hashes the payload; a corrupt entry is
  counted, deleted, and reported as a miss, never returned.
* **Atomicity** -- writes publish via ``os.replace``; no temporary
  files survive a put, and a reader racing a writer sees old or new.
* **Transparency** -- with no store configured, ``memoized`` and the
  tunnel cache behave exactly as before (persistence is opt-in).
* **Resume determinism** -- an interrupted campaign resumed from its
  checkpoints renders a summary byte-identical to an uninterrupted one,
  and failures are never checkpointed.
* **No masking** -- non-OPTIMAL LP results and failed runs are not
  persisted, so a transient error can never replay as a real answer.
"""

import json
import os
import threading

import pytest

from repro import obs
from repro.experiments import run_campaign
from repro.lp.backends import FastLPBackend
from repro.lp.model import Model, SolveResult, SolveStatus
from repro.netmodel.instances import make_te_instance
from repro.parallel import run_ordered
from repro.resilience import FaultPlan, chaos
from repro.store import (
    ArtifactStore,
    CampaignCheckpoint,
    DEFAULT_GC_BYTES,
    SCHEMA,
    StoreError,
    canonical_payload,
    digest_key,
    digest_payload,
    fingerprint,
    get_default,
    lp_model_key,
    memoized,
    memoized_solve,
    report_from_dict,
    report_to_dict,
    set_default,
    using,
)
from repro.te.tunnelcache import TunnelCache, decode_tunnels, encode_tunnels


@pytest.fixture(autouse=True)
def fresh_metrics():
    """Every test reads its own counter deltas."""
    obs.metrics.reset()
    yield


@pytest.fixture(autouse=True)
def no_default_store():
    """No test leaks a process-wide default store."""
    yield
    set_default(None)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def counter(name):
    return obs.metrics.snapshot().get(name, {}).get("value", 0)


class TestArtifactStore:
    def test_put_get_round_trip(self, store):
        payload = {"tunnels": [[1, 2], [3]], "k": 4, "name": "B4"}
        store.put("t/1/a", payload)
        assert store.get("t/1/a") == payload
        assert store.contains("t/1/a")
        assert counter("store.put") == 1
        assert counter("store.hit") == 1

    def test_missing_key_is_a_miss(self, store):
        assert store.get("absent") is None
        assert store.get("absent", default=42) == 42
        assert counter("store.miss") == 2

    def test_no_temporary_files_survive_a_put(self, store):
        for i in range(20):
            store.put(f"k/{i}", {"i": i})
        leftovers = [
            p for p in store.root.rglob("*") if p.is_file()
            and not p.name.endswith(".json")
        ]
        assert leftovers == []

    def test_keys_and_entries_are_sorted(self, store):
        for key in ("b", "a", "c"):
            store.put(key, key)
        assert store.keys() == ["a", "b", "c"]
        assert [e.key for e in store.entries()] == ["a", "b", "c"]

    def test_delete(self, store):
        store.put("k", 1)
        assert store.delete("k")
        assert not store.delete("k")
        assert store.get("k") is None

    def test_addressing_is_content_independent(self, store):
        # Same key, different payload -> same file, overwritten.
        p1 = store.put("k", {"v": 1})
        p2 = store.put("k", {"v": 2})
        assert p1 == p2
        assert store.get("k") == {"v": 2}
        assert p2.name == f"{digest_key('k')}.json"

    def test_stats_shape(self, store):
        store.put("k", 1)
        store.get("k")
        store.get("gone")
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["puts"] == 1
        assert stats["entries"] == 1
        assert stats["bytes"] > 0

    def test_negative_max_bytes_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            ArtifactStore(tmp_path / "s", max_bytes=-1)


class TestCorruption:
    def corrupt(self, store, key, mutate):
        path = store.path_for(key)
        mutate(path)
        return path

    def test_truncated_entry_is_a_miss_and_deleted(self, store):
        store.put("k", {"v": 1})
        path = self.corrupt(
            store, "k", lambda p: p.write_text(p.read_text()[:10])
        )
        assert store.get("k") is None
        assert not path.exists()
        assert counter("store.corrupt") == 1
        assert counter("store.hit") == 0

    def test_bit_flip_in_payload_is_detected(self, store):
        store.put("k", {"value": 1000})
        path = store.path_for("k")
        envelope = json.loads(path.read_text())
        envelope["payload"]["value"] = 1001  # digest now stale
        path.write_text(json.dumps(envelope))
        assert store.get("k") is None
        assert counter("store.corrupt") == 1

    def test_wrong_schema_is_corruption(self, store):
        store.put("k", 1)
        path = store.path_for("k")
        envelope = json.loads(path.read_text())
        envelope["schema"] = "someone.elses/9"
        path.write_text(json.dumps(envelope))
        assert store.get("k") is None
        assert counter("store.corrupt") == 1

    def test_corrupt_entry_triggers_recompute_not_error(self, store):
        calls = []

        def compute():
            calls.append(1)
            return {"v": 7}

        memoized("m", compute, store=store)
        self.corrupt(store, "m", lambda p: p.write_text("garbage"))
        assert memoized("m", compute, store=store) == {"v": 7}
        assert len(calls) == 2
        # The recompute re-stored a good entry.
        assert store.get("m") == {"v": 7}

    def test_verify_reports_without_repair(self, store):
        store.put("good", 1)
        store.put("bad", 2)
        path = store.path_for("bad")
        path.write_text("{nope")
        bad = store.verify()
        assert bad == [path.name]
        assert path.exists(), "verify without repair must not delete"
        assert store.verify(repair=True) == [path.name]
        assert not path.exists()
        assert store.verify() == []
        assert counter("store.corrupt") == 1  # only the repair counted


class TestGC:
    def test_lru_eviction_order(self, store, tmp_path):
        for i in range(4):
            path = store.put(f"k/{i}", {"pad": "x" * 100, "i": i})
            os.utime(path, (1000 + i, 1000 + i))
        # Reading k/0 refreshes its recency: k/1 is now the LRU entry.
        store.get("k/0")
        size = store.total_bytes
        evicted = store.gc(max_bytes=size - 1)
        assert evicted == ["k/1"]
        assert counter("store.evict") == 1

    def test_gc_to_zero_clears_everything(self, store):
        for i in range(3):
            store.put(f"k/{i}", i)
        assert len(store.gc(max_bytes=0)) == 3
        assert store.total_bytes == 0

    def test_unbounded_store_gc_is_noop(self, store):
        store.put("k", 1)
        assert store.gc() == []

    def test_max_bytes_bounds_the_store_automatically(self, tmp_path):
        store = ArtifactStore(tmp_path / "bounded", max_bytes=600)
        for i in range(10):
            store.put(f"k/{i}", {"pad": "y" * 64, "i": i})
        assert store.total_bytes <= 600
        assert counter("store.evict") > 0

    def test_clear(self, store):
        for i in range(3):
            store.put(f"k/{i}", i)
        assert store.clear() == 3
        assert store.keys() == []

    def test_default_gc_budget_is_sane(self):
        assert DEFAULT_GC_BYTES >= 64 * 1024 * 1024


class TestDefaultStore:
    def test_no_default_initially(self):
        assert get_default() is None

    def test_using_scopes_and_restores(self, store):
        with using(store):
            assert get_default() is store
            with using(None):
                assert get_default() is None
            assert get_default() is store
        assert get_default() is None

    def test_set_default_returns_previous(self, store):
        assert set_default(store) is None
        assert set_default(None) is store


class TestMemoized:
    def test_transparent_without_store(self):
        calls = []
        assert memoized("k", lambda: calls.append(1) or 41 + 1) == 42
        assert memoized("k", lambda: calls.append(1) or 41 + 1) == 42
        assert len(calls) == 2, "no store -> no caching"

    def test_memoized_uses_default_store(self, store):
        calls = []
        with using(store):
            assert memoized("k", lambda: calls.append(1) or {"a": 1}) == {"a": 1}
            assert memoized("k", lambda: calls.append(1) or {"a": 1}) == {"a": 1}
        assert len(calls) == 1

    def test_should_store_filters_failures(self, store):
        outcomes = iter(["bad", "good", "good"])
        compute = lambda: next(outcomes)
        keep = lambda value: value == "good"
        assert memoized("k", compute, store=store, should_store=keep) == "bad"
        assert memoized("k", compute, store=store, should_store=keep) == "good"
        assert memoized("k", compute, store=store, should_store=keep) == "good"
        assert store.get("k") == "good"

    def test_fingerprint_is_order_sensitive_and_stable(self):
        assert fingerprint("a", 1) == fingerprint("a", 1)
        assert fingerprint("a", 1) != fingerprint(1, "a")
        assert fingerprint("ab") != fingerprint("a", "b")


def small_model():
    model = Model("memo-smoke")
    x = model.add_var(name="x", upper=4)
    y = model.add_var(name="y", upper=3)
    model.add_constraint(x + y <= 5, name="cap")
    model.maximize(x + 2 * y)
    return model


class TestMemoizedSolve:
    def test_replay_matches_fresh_solve(self, store):
        backend = FastLPBackend()
        first = memoized_solve(backend, small_model(), store)
        replay = memoized_solve(backend, small_model(), store)
        assert first.ok and replay.ok
        assert replay.objective == first.objective
        assert replay.values == first.values
        assert replay.status is SolveStatus.OPTIMAL
        assert counter("store.hit") == 1

    def test_key_covers_backend_and_model(self, store):
        model = small_model()
        key_fast = lp_model_key(model, "fast-highs")
        key_slow = lp_model_key(model, "slow-pulp")
        assert key_fast != key_slow
        other = small_model()
        other.add_constraint(other.variables[0] <= 1, name="tighter")
        assert lp_model_key(other, "fast-highs") != key_fast

    def test_non_optimal_results_are_not_stored(self, store):
        class Infeasible:
            name = "always-infeasible"

            def solve(self, model):
                return SolveResult(
                    status=SolveStatus.INFEASIBLE,
                    objective=float("nan"),
                    values=[0.0, 0.0],
                )

        backend = Infeasible()
        memoized_solve(backend, small_model(), store)
        assert store.keys() == [], "failures must never be persisted"


class TestTunnelCacheStoreTier:
    @pytest.fixture(scope="class")
    def instance(self):
        return make_te_instance("B4", max_commodities=12)

    def test_encode_decode_round_trip(self, instance):
        from repro.te.paths import k_shortest_tunnels

        tunnels = k_shortest_tunnels(instance.topology, instance.traffic, 3)
        assert decode_tunnels(encode_tunnels(tunnels)) == tunnels

    def test_warm_tunnels_survive_a_fresh_cache(self, store, instance):
        first = TunnelCache(max_entries=8, store=store)
        tunnels = first.lookup(instance.topology, instance.traffic, k=3)
        assert counter("store.put") == 1
        # A fresh cache (fresh process, conceptually) hits the store.
        second = TunnelCache(max_entries=8, store=store)
        replay = second.lookup(instance.topology, instance.traffic, k=3)
        assert replay == tunnels
        assert counter("store.hit") == 1
        assert second.misses == 1, "memory tier still records its miss"

    def test_corrupt_store_entry_recomputes(self, store, instance):
        first = TunnelCache(store=store)
        tunnels = first.lookup(instance.topology, instance.traffic, k=3)
        key = TunnelCache.store_key(
            first._key(instance.topology, instance.traffic, 3)
        )
        store.path_for(key).write_text("{broken")
        second = TunnelCache(store=store)
        assert second.lookup(instance.topology, instance.traffic, k=3) == tunnels
        assert counter("store.corrupt") == 1

    def test_stale_encoding_recomputes(self, store, instance):
        cache = TunnelCache(store=store)
        key = TunnelCache.store_key(
            cache._key(instance.topology, instance.traffic, 3)
        )
        store.put(key, {"not": "a tunnel list"})
        tunnels = cache.lookup(instance.topology, instance.traffic, k=3)
        assert len(tunnels) == len(list(instance.traffic.commodities()))

    def test_attach_and_detach(self, store, instance):
        cache = TunnelCache()
        assert cache.store is None
        cache.lookup(instance.topology, instance.traffic, k=3)
        assert counter("store.put") == 0, "no store -> no persistence"
        cache.attach_store(store)
        assert cache.store is store
        cache.attach_store(None)
        assert cache.store is None

    def test_concurrent_lookups_stay_consistent(self, store, instance):
        """Satellite: hammer one cache from many workers.

        Hits + misses must equal lookups, every result must be equal,
        and the memory tier must respect its entry bound.
        """
        cache = TunnelCache(max_entries=4, store=store)
        ks = [1, 2, 3, 4, 5, 6]

        def task(k):
            return lambda: cache.lookup(instance.topology, instance.traffic, k)

        results = run_ordered(
            [task(ks[i % len(ks)]) for i in range(24)], workers=8
        )
        for i, result in enumerate(results):
            assert result == results[i % len(ks)]
        assert cache.hits + cache.misses == 24
        assert len(cache._entries) <= 4
        # Evicted entries are still replayable from the store tier.
        assert counter("store.put") >= len(ks) - 4


class TestCheckpoint:
    def run_report(self):
        result = run_campaign(["ncflow"])
        return next(iter(result.reports.values()))

    def test_report_round_trip(self):
        report = self.run_report()
        rebuilt = report_from_dict(report_to_dict(report))
        assert rebuilt == report

    def test_unknown_schema_rejected(self):
        payload = report_to_dict(self.run_report())
        payload["schema"] = "repro.report/999"
        with pytest.raises(ValueError):
            report_from_dict(payload)

    def test_save_load(self, store):
        checkpoint = CampaignCheckpoint(store)
        report = self.run_report()
        checkpoint.save("ncflow", "detailed-prose", 6, report)
        assert checkpoint.load("ncflow", "detailed-prose", 6) == report
        assert checkpoint.load("ncflow", "detailed-prose", 7) is None
        assert checkpoint.load("arrow", "detailed-prose", 6) is None
        assert counter("campaign.checkpoint.saved") == 1
        assert counter("campaign.checkpoint.resumed") == 1

    def test_completed_mask(self, store):
        checkpoint = CampaignCheckpoint(store)
        checkpoint.save("ncflow", "s", 6, self.run_report())
        assert checkpoint.completed(
            [("ncflow", "s"), ("arrow", "s")], 6
        ) == [True, False]

    def test_undecodable_checkpoint_is_absent(self, store):
        checkpoint = CampaignCheckpoint(store)
        store.put(CampaignCheckpoint.run_key("p", "s", 6), {"schema": "zzz"})
        assert checkpoint.load("p", "s", 6) is None


PAPERS = ["ncflow", "arrow", "rps"]
#: rate=0.2 at sites=parallel.task kills exactly run index 1 of the
#: three-task fan-out (verified constant of the fault hash for seed 1).
KILL_ONE = "rate=0.2,seed=1,sites=parallel.task"


class TestCampaignResume:
    def test_interrupted_then_resumed_is_byte_identical(self, store):
        checkpoint = CampaignCheckpoint(store)
        clean = run_campaign(PAPERS)
        with chaos(FaultPlan.parse(KILL_ONE)):
            interrupted = run_campaign(PAPERS, checkpoint=checkpoint)
        assert len(interrupted.failures) == 1
        assert len(interrupted.reports) == 2
        # The crash was not checkpointed; the completed runs were.
        assert sorted(store.keys()) == sorted(
            CampaignCheckpoint.run_key(paper, style, 6)
            for (paper, style) in interrupted.reports
        )
        obs.metrics.reset()
        resumed = run_campaign(PAPERS, checkpoint=checkpoint, resume=True)
        assert resumed.summary() == clean.summary()
        assert not resumed.failures
        assert counter("campaign.checkpoint.resumed") == 2
        assert counter("campaign.checkpoint.saved") == 1

    def test_resume_skips_completed_runs(self, store):
        checkpoint = CampaignCheckpoint(store)
        run_campaign(PAPERS, checkpoint=checkpoint)
        obs.metrics.reset()
        again = run_campaign(PAPERS, checkpoint=checkpoint, resume=True)
        assert counter("campaign.checkpoint.resumed") == 3
        assert counter("campaign.checkpoint.saved") == 0
        assert again.num_succeeded == 3

    def test_without_resume_checkpoints_are_ignored(self, store):
        checkpoint = CampaignCheckpoint(store)
        run_campaign(PAPERS, checkpoint=checkpoint)
        obs.metrics.reset()
        rerun = run_campaign(PAPERS, checkpoint=checkpoint)
        assert counter("campaign.checkpoint.resumed") == 0
        assert counter("campaign.checkpoint.saved") == 3

    def test_resume_works_across_store_instances(self, tmp_path):
        """The disk round trip: a second store object sees the runs."""
        first = CampaignCheckpoint(ArtifactStore(tmp_path / "cp"))
        clean = run_campaign(PAPERS)
        with chaos(FaultPlan.parse(KILL_ONE)):
            run_campaign(PAPERS, checkpoint=first)
        second = CampaignCheckpoint(ArtifactStore(tmp_path / "cp"))
        resumed = run_campaign(PAPERS, checkpoint=second, resume=True)
        assert resumed.summary() == clean.summary()


class TestAtomicity:
    def test_concurrent_writers_one_reader(self, store):
        """Readers racing writers see a full old or new value, never
        a torn one (the os.replace contract)."""
        stop = threading.Event()
        seen_bad = []

        def reader():
            while not stop.is_set():
                value = store.get("contended")
                if value is not None and value.get("a") != value.get("b"):
                    seen_bad.append(value)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for i in range(50):
                store.put("contended", {"a": i, "b": i})
        finally:
            stop.set()
            thread.join()
        assert seen_bad == []
        assert counter("store.corrupt") == 0

    def test_envelope_digest_matches_canonical_encoding(self, store):
        payload = {"z": 1, "a": [1, 2, {"k": "v"}]}
        store.put("k", payload)
        envelope = json.loads(store.path_for("k").read_text())
        assert envelope["schema"] == SCHEMA
        assert envelope["digest"] == digest_payload(canonical_payload(payload))


class TestStoreCLI:
    def run_cli(self, argv):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_store_flag_persists_tunnels_across_processes(self, tmp_path):
        """Conceptually two processes: two CLI invocations, one store.

        The global tunnel cache is cleared between the invocations so
        the second one starts memory-cold, the way a new process would.
        """
        from repro.te.tunnelcache import TUNNEL_CACHE

        store_dir = str(tmp_path / "s")
        TUNNEL_CACHE.clear()
        code, text = self.run_cli([
            "--store", store_dir, "te", "B4", "--metrics",
        ])
        assert code == 0
        assert "store.put" in text and "store.hit" not in text
        TUNNEL_CACHE.clear()
        code, text = self.run_cli([
            "--store", store_dir, "te", "B4", "--metrics",
        ])
        assert code == 0
        assert "store.hit" in text

    def test_store_flag_detaches_after_the_command(self, tmp_path):
        from repro.te.tunnelcache import TUNNEL_CACHE

        self.run_cli(["--store", str(tmp_path / "s"), "te", "B4"])
        assert TUNNEL_CACHE.store is None
        assert get_default() is None

    def test_resume_requires_a_store(self):
        code, text = self.run_cli(["campaign", "--resume", "ncflow"])
        assert code == 2
        assert "--store" in text

    def test_campaign_interrupt_resume_via_cli(self, tmp_path):
        store_dir = str(tmp_path / "s")
        code, _ = self.run_cli([
            "--store", store_dir, "--fault-plan", KILL_ONE,
            "campaign", *PAPERS,
        ])
        assert code == 1, "interrupted campaign reports failure"
        code, text = self.run_cli([
            "--store", store_dir, "campaign", "--resume", *PAPERS,
        ])
        assert code == 0
        assert "3 runs, 3 succeeded" in text

    def test_store_subcommand_lifecycle(self, tmp_path):
        store_dir = str(tmp_path / "s")
        store = ArtifactStore(store_dir)
        store.put("a", {"x": 1})
        store.put("b", {"y": 2})

        code, text = self.run_cli(["store", "ls", store_dir])
        assert code == 0
        assert "a" in text and "2 entries" in text

        code, text = self.run_cli(["store", "stats", store_dir])
        assert code == 0
        assert "entries" in text

        code, text = self.run_cli(["store", "verify", store_dir])
        assert code == 0

        store.path_for("a").write_text("{broken")
        code, text = self.run_cli(["store", "verify", store_dir])
        assert code == 1
        code, text = self.run_cli(["store", "verify", store_dir, "--repair"])
        assert code == 1
        code, text = self.run_cli(["store", "verify", store_dir])
        assert code == 0

        code, text = self.run_cli([
            "store", "gc", store_dir, "--max-bytes", "0",
        ])
        assert code == 0
        code, text = self.run_cli(["store", "clear", store_dir])
        assert code == 0
        assert ArtifactStore(store_dir).keys() == []

    def test_store_action_without_path_or_default_errors(self):
        code, text = self.run_cli(["store", "ls"])
        assert code == 2
        assert "--store" in text or "store" in text
