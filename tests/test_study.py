"""Tests for the SIGCOMM/NSDI study corpus and its calibration."""

import pytest

from repro.study import build_corpus, comparison_stats, opensource_stats
from repro.study.corpus import (
    VENUE_YEAR_COUNTS,
    YEARS,
    _apportion,
    _stride_order,
)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus()


class TestCorpusShape:
    def test_total_paper_count(self, corpus):
        expected = sum(sum(counts) for counts in VENUE_YEAR_COUNTS.values())
        assert len(corpus) == expected

    def test_every_venue_year_present(self, corpus):
        seen = {(r.venue, r.year) for r in corpus}
        for venue, counts in VENUE_YEAR_COUNTS.items():
            for year in YEARS:
                assert (venue, year) in seen

    def test_paper_ids_unique(self, corpus):
        ids = [r.paper_id for r in corpus]
        assert len(ids) == len(set(ids))

    def test_compared_at_least_manual(self, corpus):
        for record in corpus:
            assert record.num_compared >= record.num_manual

    def test_deterministic(self, corpus):
        again = build_corpus()
        assert corpus == again


class TestFigure1Calibration:
    """The rounded percentages must match the paper: 32 / 29 / 31."""

    def test_sigcomm_rate(self, corpus):
        stats = opensource_stats(corpus)
        assert round(stats.venue_fraction("SIGCOMM") * 100) == 32

    def test_nsdi_rate(self, corpus):
        stats = opensource_stats(corpus)
        assert round(stats.venue_fraction("NSDI") * 100) == 29

    def test_combined_rate(self, corpus):
        stats = opensource_stats(corpus)
        assert round(stats.combined_fraction * 100) == 31

    def test_open_sourcing_trends_upward(self, corpus):
        stats = opensource_stats(corpus)
        for venue in ("SIGCOMM", "NSDI"):
            early = sum(
                stats.per_venue_year[(venue, year)][0] for year in YEARS[:5]
            )
            late = sum(
                stats.per_venue_year[(venue, year)][0] for year in YEARS[5:]
            )
            assert late > early

    def test_rows_cover_everything(self, corpus):
        stats = opensource_stats(corpus)
        rows = stats.rows()
        assert len(rows) == 20  # 2 venues x 10 years
        assert sum(total for _, _, _, total, _ in rows) == len(corpus)


class TestFigure2Calibration:
    """Aggregates must land on the paper's numbers (within rounding)."""

    def test_compared_ge2(self, corpus):
        stats = comparison_stats(corpus)
        assert stats.frac_compared_ge2 == pytest.approx(0.5968, abs=0.005)

    def test_manual_ge1(self, corpus):
        stats = comparison_stats(corpus)
        assert stats.frac_manual_ge1 == pytest.approx(0.4920, abs=0.005)

    def test_manual_ge2(self, corpus):
        stats = comparison_stats(corpus)
        assert stats.frac_manual_ge2 == pytest.approx(0.2665, abs=0.005)

    def test_mean_manual_among_reproducers(self, corpus):
        stats = comparison_stats(corpus)
        assert stats.mean_manual_given_any == pytest.approx(2.29, abs=0.03)

    def test_histograms_account_for_all_papers(self, corpus):
        stats = comparison_stats(corpus)
        assert sum(stats.compared_histogram.values()) == stats.num_papers
        assert sum(stats.manual_histogram.values()) == stats.num_papers


class TestHelpers:
    def test_apportion_exact(self):
        counts = _apportion(10, [0.5, 0.3, 0.2])
        assert counts == [5, 3, 2]

    def test_apportion_rounds_by_largest_remainder(self):
        counts = _apportion(10, [0.55, 0.45])
        assert sum(counts) == 10
        assert counts == [6, 4] or counts == [5, 5]

    def test_stride_order_is_permutation(self):
        order = _stride_order(100)
        assert sorted(order) == list(range(100))
