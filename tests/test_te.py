"""Tests for the TE substrate: PF4 baseline, NCFlow, ARROW."""

import pytest

from repro.lp import SlowLPBackend
from repro.netmodel.instances import make_te_instance
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix
from repro.te import (
    k_shortest_tunnels,
    path_links,
    solve_max_flow,
    solve_max_flow_edge,
)
from repro.te.arrow import ArrowSolver, single_fiber_scenarios
from repro.te.arrow.restoration import cut_links, designated_restorable_links
from repro.te.ncflow import (
    NCFlowSolver,
    label_propagation_partition,
    modularity_partition,
    random_partition,
)
from repro.te.ncflow.solver import _contract


def line_topology(capacities=(10.0, 10.0)):
    topo = Topology("line")
    names = ["a", "b", "c"]
    for name in names:
        topo.add_node(name)
    topo.add_bidi_link("a", "b", capacities[0])
    topo.add_bidi_link("b", "c", capacities[1])
    return topo


class TestPaths:
    def test_path_links(self):
        assert path_links(["a", "b", "c"]) == [("a", "b"), ("b", "c")]

    def test_k_shortest_tunnels_skips_unroutable(self):
        topo = line_topology()
        topo.add_node("island")
        traffic = TrafficMatrix({("a", "c"): 5.0, ("a", "island"): 3.0})
        tunnels = k_shortest_tunnels(topo, traffic, 2)
        assert ("a", "c") in tunnels
        assert ("a", "island") not in tunnels

    def test_k_validated(self):
        topo = line_topology()
        with pytest.raises(ValueError):
            k_shortest_tunnels(topo, TrafficMatrix(), 0)


class TestMaxFlow:
    def test_bottleneck_respected(self):
        topo = line_topology(capacities=(10.0, 4.0))
        traffic = TrafficMatrix({("a", "c"): 8.0})
        solution = solve_max_flow(topo, traffic)
        assert solution.objective == pytest.approx(4.0)

    def test_demand_cap_respected(self):
        topo = line_topology()
        traffic = TrafficMatrix({("a", "c"): 3.0})
        solution = solve_max_flow(topo, traffic)
        assert solution.objective == pytest.approx(3.0)
        assert solution.flow_per_commodity[("a", "c")] == pytest.approx(3.0)

    def test_multiple_commodities_share_capacity(self):
        topo = line_topology(capacities=(10.0, 10.0))
        traffic = TrafficMatrix({("a", "c"): 8.0, ("b", "c"): 8.0})
        solution = solve_max_flow(topo, traffic)
        assert solution.objective == pytest.approx(10.0 + 0.0) or (
            solution.objective <= 16.0
        )
        # b->c capacity 10 is shared; total cannot exceed it plus nothing.
        assert solution.objective == pytest.approx(10.0)

    def test_solution_metadata(self):
        topo = line_topology()
        traffic = TrafficMatrix({("a", "c"): 3.0})
        solution = solve_max_flow(topo, traffic)
        assert solution.ok
        assert solution.lp_count == 1
        assert solution.satisfied_fraction(traffic.total_demand) == pytest.approx(1.0)

    def test_backend_passthrough(self):
        topo = line_topology()
        traffic = TrafficMatrix({("a", "c"): 3.0})
        solution = solve_max_flow(topo, traffic, backend=SlowLPBackend())
        assert solution.objective == pytest.approx(3.0)


class TestPartitioning:
    def test_modularity_partition_clusters_connected(self, uninett_instance):
        topo = uninett_instance.topology
        partition = modularity_partition(topo)
        assert set(partition.cluster_of) == set(topo.nodes)
        for cluster in partition.clusters():
            sub = topo.subgraph(partition.members(cluster))
            undirected = sub.to_networkx().to_undirected()
            import networkx

            assert networkx.is_connected(undirected), (
                f"cluster {cluster} is disconnected"
            )

    def test_label_propagation_partition_covers_all(self, uninett_instance):
        partition = label_propagation_partition(uninett_instance.topology)
        assert set(partition.cluster_of) == set(uninett_instance.topology.nodes)

    def test_random_partition_balanced(self, uninett_instance):
        partition = random_partition(uninett_instance.topology, seed=1)
        sizes = [len(partition.members(c)) for c in partition.clusters()]
        assert max(sizes) - min(sizes) <= 1

    def test_partition_ids_normalised(self, uninett_instance):
        partition = modularity_partition(uninett_instance.topology)
        assert partition.clusters() == list(range(partition.num_clusters))

    def test_cut_links_counted(self, uninett_instance):
        topo = uninett_instance.topology
        partition = modularity_partition(topo)
        cut = partition.cut_links(topo)
        assert 0 < cut < topo.num_links


class TestNCFlow:
    def test_contract_aggregates(self, uninett_instance):
        topo = uninett_instance.topology
        partition = modularity_partition(topo)
        contracted, border = _contract(topo, partition)
        for (ca, cb), links in border.items():
            assert contracted.capacity(f"C{ca}", f"C{cb}") == pytest.approx(
                sum(capacity for _, _, capacity in links)
            )

    def test_feasible_and_at_most_optimal_under_load(self):
        instance = make_te_instance(
            "Colt", max_commodities=150, total_demand_fraction=0.15
        )
        optimal = solve_max_flow_edge(instance.topology, instance.traffic)
        solution = NCFlowSolver().solve(instance.topology, instance.traffic)
        assert solution.objective > 0
        assert solution.objective <= optimal.objective * 1.001

    def test_link_usage_within_capacity(self, uninett_instance):
        solver = NCFlowSolver(num_iterations=1)
        partition = modularity_partition(uninett_instance.topology)
        run = solver.solve_with_partition(
            uninett_instance.topology, uninett_instance.traffic, partition
        )
        for (src, dst), used in run.link_usage.items():
            capacity = uninett_instance.topology.capacity(src, dst)
            assert used <= capacity + 1e-6, f"{src}->{dst} over capacity"

    def test_iterations_never_hurt(self):
        instance = make_te_instance(
            "Colt", max_commodities=100, total_demand_fraction=0.15
        )
        partition = modularity_partition(instance.topology)
        single = NCFlowSolver(num_iterations=1).solve_iterated(
            instance.topology, instance.traffic, partition
        )
        triple = NCFlowSolver(num_iterations=3).solve_iterated(
            instance.topology, instance.traffic, partition
        )
        assert triple.objective >= single.objective - 1e-6

    def test_lp_count_reported(self, uninett_instance):
        solution = NCFlowSolver().solve(
            uninett_instance.topology, uninett_instance.traffic
        )
        assert solution.lp_count >= 2  # at least R1 plus one R2

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            NCFlowSolver(num_iterations=0)
        solver = NCFlowSolver(partitioners=["nope"])
        with pytest.raises(KeyError):
            solver.solve(line_topology(), TrafficMatrix({("a", "c"): 1.0}))

    def test_per_commodity_flows_bounded_by_demand(self, uninett_instance):
        solution = NCFlowSolver().solve(
            uninett_instance.topology, uninett_instance.traffic
        )
        for key, flow in solution.flow_per_commodity.items():
            assert flow <= uninett_instance.traffic.demands[key] + 1e-6


class TestArrowRestoration:
    def test_scenarios_include_baseline(self, b4_instance):
        scenarios = single_fiber_scenarios(b4_instance.topology)
        assert scenarios[0].is_baseline
        assert all(len(s.cut_fibers) == 1 for s in scenarios[1:])

    def test_scenario_limit_subsamples(self, b4_instance):
        scenarios = single_fiber_scenarios(b4_instance.topology, limit=5)
        assert len(scenarios) == 6  # baseline + 5

    def test_designated_links_deterministic_half(self, b4_instance):
        fiber = b4_instance.topology.fibers()[0]
        designated = designated_restorable_links(b4_instance.topology, fiber)
        on_fiber = b4_instance.topology.links_on_fiber(fiber)
        assert len(designated) == (len(on_fiber) + 1) // 2

    def test_cut_links(self, b4_instance):
        fiber = b4_instance.topology.fibers()[0]
        scenarios = single_fiber_scenarios(b4_instance.topology)
        scenario = next(s for s in scenarios if fiber in s.cut_fibers)
        lost = cut_links(b4_instance.topology, scenario)
        assert len(lost) == 2  # both directions of the physical link


class TestArrowSolver:
    def test_variant_ordering(self, b4_instance):
        scenarios = single_fiber_scenarios(b4_instance.topology, limit=12)
        objectives = {}
        for variant in ("none", "paper", "code"):
            solution = ArrowSolver(variant=variant).solve(
                b4_instance.topology, b4_instance.traffic, scenarios
            )
            objectives[variant] = solution.objective
        assert objectives["none"] <= objectives["paper"] + 1e-6
        assert objectives["paper"] <= objectives["code"] + 1e-6

    def test_no_failure_only_equals_plain_max_flow_bound(self, b4_instance):
        from repro.te.arrow.restoration import FailureScenario

        baseline_only = [FailureScenario("no-failure", frozenset())]
        solution = ArrowSolver(variant="code").solve(
            b4_instance.topology, b4_instance.traffic, baseline_only
        )
        optimal = solve_max_flow(
            b4_instance.topology, b4_instance.traffic, num_paths=3
        )
        assert solution.objective == pytest.approx(optimal.objective, rel=1e-6)

    def test_failures_never_help(self, b4_instance):
        all_scenarios = single_fiber_scenarios(b4_instance.topology, limit=12)
        fewer = all_scenarios[:4]
        more = ArrowSolver(variant="paper").solve(
            b4_instance.topology, b4_instance.traffic, all_scenarios
        )
        less = ArrowSolver(variant="paper").solve(
            b4_instance.topology, b4_instance.traffic, fewer
        )
        assert more.objective <= less.objective + 1e-6

    def test_invalid_params(self):
        with pytest.raises(KeyError):
            ArrowSolver(variant="magic")
        with pytest.raises(ValueError):
            ArrowSolver(restore_fraction=2.0)
        with pytest.raises(ValueError):
            ArrowSolver(budget_fraction=-0.1)

    def test_admitted_flows_bounded_by_demand(self, b4_instance):
        scenarios = single_fiber_scenarios(b4_instance.topology, limit=6)
        solution = ArrowSolver(variant="code").solve(
            b4_instance.topology, b4_instance.traffic, scenarios
        )
        for key, flow in solution.flow_per_commodity.items():
            assert flow <= b4_instance.traffic.demands[key] + 1e-6
