"""Tests for the TE extensions: min-MLU, ARROW tickets, APKeep batches."""

import pytest

from repro.apkeep import APKeepVerifier
from repro.netmodel.headerspace import Prefix
from repro.netmodel.instances import make_te_instance
from repro.netmodel.rules import ForwardingRule
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix
from repro.te import solve_min_mlu
from repro.te.arrow import (
    ArrowSolver,
    RestorationTicket,
    generate_tickets,
    single_fiber_scenarios,
)


def line_topology(cap_ab=10.0, cap_bc=10.0):
    topo = Topology("line")
    for node in ("a", "b", "c"):
        topo.add_node(node)
    topo.add_bidi_link("a", "b", cap_ab)
    topo.add_bidi_link("b", "c", cap_bc)
    return topo


class TestMinMLU:
    def test_bottleneck_utilisation(self):
        topo = line_topology(cap_ab=10.0, cap_bc=5.0)
        traffic = TrafficMatrix({("a", "c"): 4.0})
        solution = solve_min_mlu(topo, traffic)
        assert solution.ok
        assert solution.objective == pytest.approx(4.0 / 5.0)

    def test_all_demand_routed(self):
        topo = line_topology()
        traffic = TrafficMatrix({("a", "c"): 3.0, ("c", "a"): 2.0})
        solution = solve_min_mlu(topo, traffic)
        assert solution.flow_per_commodity[("a", "c")] == pytest.approx(3.0)
        assert solution.flow_per_commodity[("c", "a")] == pytest.approx(2.0)

    def test_overload_reports_mlu_above_one(self):
        topo = line_topology(cap_ab=2.0, cap_bc=2.0)
        traffic = TrafficMatrix({("a", "c"): 5.0})
        solution = solve_min_mlu(topo, traffic)
        assert solution.ok
        assert solution.objective == pytest.approx(2.5)

    def test_splitting_lowers_mlu(self, b4_instance):
        single = solve_min_mlu(
            b4_instance.topology, b4_instance.traffic, num_paths=1
        )
        multi = solve_min_mlu(
            b4_instance.topology, b4_instance.traffic, num_paths=4
        )
        assert multi.objective <= single.objective + 1e-9


class TestRestorationTickets:
    def test_tickets_respect_caps_and_budget(self, b4_instance):
        topo = b4_instance.topology
        for fiber in topo.fibers()[:5]:
            tickets = generate_tickets(topo, fiber, budget_fraction=0.5)
            links = {
                (link.src, link.dst): link.capacity
                for link in topo.links_on_fiber(fiber)
            }
            budget = 0.5 * sum(links.values())
            assert len(tickets) == len(links) + 1
            for ticket in tickets:
                assert ticket.total_restored <= budget + 1e-9
                for edge, amount in ticket.restored:
                    assert amount <= links[edge] + 1e-9

    def test_ticket_names_unique(self, b4_instance):
        fiber = b4_instance.topology.fibers()[0]
        tickets = generate_tickets(b4_instance.topology, fiber)
        names = [ticket.name for ticket in tickets]
        assert len(names) == len(set(names))

    def test_ticket_variant_between_none_and_code(self, b4_instance):
        scenarios = single_fiber_scenarios(b4_instance.topology, limit=10)
        objectives = {}
        for variant in ("none", "ticket", "code"):
            objectives[variant] = ArrowSolver(variant=variant).solve(
                b4_instance.topology, b4_instance.traffic, scenarios
            ).objective
        assert objectives["none"] <= objectives["ticket"] + 1e-6
        assert objectives["ticket"] <= objectives["code"] + 1e-6

    def test_empty_fiber_yields_no_tickets(self):
        topo = line_topology()
        assert generate_tickets(topo, "no-such-fiber") == []


class TestAPKeepBatch:
    def test_batch_update_round_trip(self, internet2):
        verifier = APKeepVerifier(internet2)
        node = internet2.topology.nodes[0]
        neighbor = internet2.topology.successors(node)[0]
        rule_a = ForwardingRule(Prefix(0xF000, 4), neighbor, priority=90)
        rule_b = ForwardingRule(Prefix(0xF800, 5), neighbor, priority=91)
        changes = verifier.batch_update(
            [
                ("insert", node, rule_a),
                ("insert", node, rule_b),
                ("remove", node, rule_b),
                ("remove", node, rule_a),
            ]
        )
        assert len(changes) == 4
        assert verifier.find_loops() == []

    def test_batch_rejects_unknown_operation(self, internet2):
        verifier = APKeepVerifier(internet2)
        node = internet2.topology.nodes[0]
        rule = ForwardingRule(Prefix(0xF000, 4), "drop", priority=90)
        with pytest.raises(ValueError):
            verifier.batch_update([("upsert", node, rule)])

    def test_update_latency_stats(self, internet2):
        verifier = APKeepVerifier(internet2)
        stats = verifier.update_latency_stats()
        assert stats["count"] == len(verifier.updates)
        assert stats["count"] > 0
        assert 0.0 <= stats["p50"] <= stats["p99"] <= stats["max"]
        assert stats["mean"] > 0.0

    def test_update_latency_stats_empty(self):
        from repro.netmodel.datasets import VerificationDataset
        from repro.netmodel.topology import Topology

        topo = Topology("empty")
        dataset = VerificationDataset("empty", topo, {}, {})
        verifier = APKeepVerifier(dataset)
        stats = verifier.update_latency_stats()
        assert stats["count"] == 0


class TestFleischer:
    def test_matches_exact_on_single_path(self):
        topo = line_topology(cap_ab=10.0, cap_bc=4.0)
        traffic = TrafficMatrix({("a", "c"): 8.0})
        from repro.te import solve_fleischer

        solution = solve_fleischer(topo, traffic, epsilon=0.05)
        assert solution.objective == pytest.approx(4.0, rel=0.08)

    def test_within_guarantee_of_exact(self, b4_instance):
        from repro.te import solve_fleischer, solve_max_flow_edge

        exact = solve_max_flow_edge(b4_instance.topology, b4_instance.traffic)
        approx = solve_fleischer(
            b4_instance.topology, b4_instance.traffic, epsilon=0.1
        )
        assert approx.objective <= exact.objective * (1 + 1e-6)
        assert approx.objective >= exact.objective * 0.7  # classic bound

    def test_demand_caps_respected(self, b4_instance):
        from repro.te import solve_fleischer

        solution = solve_fleischer(
            b4_instance.topology, b4_instance.traffic, epsilon=0.1
        )
        for key, flow in solution.flow_per_commodity.items():
            assert flow <= b4_instance.traffic.demands[key] + 1e-6

    def test_epsilon_validated(self):
        from repro.te import solve_fleischer

        with pytest.raises(ValueError):
            solve_fleischer(line_topology(), TrafficMatrix(), epsilon=0.0)
        with pytest.raises(ValueError):
            solve_fleischer(line_topology(), TrafficMatrix(), epsilon=0.9)

    def test_empty_traffic(self):
        from repro.te import solve_fleischer

        solution = solve_fleischer(line_topology(), TrafficMatrix())
        assert solution.objective == 0.0

    def test_smaller_epsilon_at_least_as_good(self):
        topo = line_topology(cap_ab=10.0, cap_bc=10.0)
        traffic = TrafficMatrix({("a", "c"): 8.0, ("c", "a"): 8.0})
        from repro.te import solve_fleischer

        coarse = solve_fleischer(topo, traffic, epsilon=0.3)
        fine = solve_fleischer(topo, traffic, epsilon=0.05)
        assert fine.objective >= coarse.objective - 1e-6
