"""Parallel sweeps/campaigns and the demand-scale + tunnel-cache interplay.

The contract under test: ``workers=N`` changes wall-clock behaviour
only — results, ordering, and report contents are identical to the
serial run.
"""

import types

import pytest

from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix
from repro.parallel import run_ordered
from repro.te import TUNNEL_CACHE
from repro.te.demandscale import max_feasible_scale, scale_sweep


def line_topology(cap_ab=10.0, cap_bc=6.0):
    topo = Topology("line")
    for node in ("a", "b", "c"):
        topo.add_node(node)
    topo.add_bidi_link("a", "b", cap_ab)
    topo.add_bidi_link("b", "c", cap_bc)
    return topo


def line_traffic():
    return TrafficMatrix({("a", "c"): 4.0, ("c", "a"): 2.0, ("a", "b"): 3.0})


class TestRunOrdered:
    def test_preserves_submission_order(self):
        tasks = [lambda i=i: i * i for i in range(20)]
        assert run_ordered(tasks, workers=4) == [i * i for i in range(20)]

    def test_serial_and_parallel_agree(self):
        tasks = [lambda i=i: i + 1 for i in range(7)]
        assert run_ordered(tasks, workers=1) == run_ordered(tasks, workers=3)

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            run_ordered([lambda: 1], workers=0)

    def test_exceptions_propagate(self):
        def boom():
            raise RuntimeError("task failed")

        with pytest.raises(RuntimeError, match="task failed"):
            run_ordered([lambda: 1, boom], workers=2)

    def test_raising_task_cancels_not_yet_started_tasks(self):
        # Regression: a raising task used to let every queued task run to
        # completion before the exception propagated.  Now its completion
        # cancels all later futures, so only tasks already running when
        # the failure lands ever execute.
        import threading
        import time

        barrier = threading.Barrier(2)
        executed = []
        lock = threading.Lock()

        def boom():
            barrier.wait(timeout=5)  # wait until the slow task is running
            raise RuntimeError("poison")

        def slow():
            barrier.wait(timeout=5)
            time.sleep(0.2)  # outlive the failure + cancellation sweep
            with lock:
                executed.append(1)
            return 1

        def late(index):
            with lock:
                executed.append(index)
            return index

        tasks = [boom, slow] + [lambda i=i: late(i) for i in range(2, 10)]
        with pytest.raises(RuntimeError, match="poison"):
            run_ordered(tasks, workers=2)
        # Only the task that was already mid-flight finished; the eight
        # queued tasks were cancelled before starting.
        assert executed == [1]


class TestParallelScaleSweep:
    scales = [0.25, 0.5, 1.0, 2.0, 4.0]

    def test_parallel_equals_serial(self):
        topo, traffic = line_topology(), line_traffic()
        serial = scale_sweep(topo, traffic, "pf4", self.scales, workers=1)
        parallel = scale_sweep(topo, traffic, "pf4", self.scales, workers=4)
        assert parallel == serial
        assert [point.scale for point in parallel] == self.scales

    def test_solver_accepts_name_instance_and_callable(self):
        from repro.te import make_solver, solve_max_flow

        topo, traffic = line_topology(), line_traffic()
        by_name = scale_sweep(topo, traffic, "pf4", [1.0])
        by_instance = scale_sweep(topo, traffic, make_solver("pf4"), [1.0])
        by_callable = scale_sweep(topo, traffic, solve_max_flow, [1.0])
        assert by_name == by_instance == by_callable

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            scale_sweep(line_topology(), line_traffic(), "pf4", [1.0, 0.0])

    def test_rejects_unsolvable_solver_argument(self):
        with pytest.raises(TypeError):
            scale_sweep(line_topology(), line_traffic(), 42, [1.0])

    def test_underload_satisfied_overload_capped(self):
        topo, traffic = line_topology(), line_traffic()
        points = scale_sweep(topo, traffic, "edge", self.scales)
        assert points[0].satisfied_fraction == pytest.approx(1.0, abs=1e-6)
        assert points[-1].satisfied_fraction < 1.0


class TestMaxFeasibleScale:
    def test_pf_oracle_runs_tunnel_selection_once(self):
        topo, traffic = line_topology(), line_traffic()
        TUNNEL_CACHE.clear()
        scale = max_feasible_scale(topo, traffic, oracle="pf4")
        stats = TUNNEL_CACHE.stats()
        # The binary search rescales the same commodity keys, so Yen's
        # algorithm ran exactly once for (topology, k=4).
        assert stats["misses"] == 1
        assert stats["hits"] >= 3
        baseline = max_feasible_scale(topo, traffic, oracle="edge")
        assert scale == pytest.approx(baseline, rel=0.05)

    def test_scale_is_the_saturation_point(self):
        topo, traffic = line_topology(), line_traffic()
        scale = max_feasible_scale(topo, traffic, tolerance=0.005)
        from repro.te import registry

        fits = registry.solve("edge", topo, traffic.scaled(scale * 0.99))
        assert fits.objective == pytest.approx(
            traffic.total_demand * scale * 0.99, rel=1e-4
        )
        over = registry.solve("edge", topo, traffic.scaled(scale * 1.05))
        assert over.objective < traffic.total_demand * scale * 1.05 * (1 - 1e-6)

    def test_rejects_empty_traffic(self):
        with pytest.raises(ValueError):
            max_feasible_scale(line_topology(), TrafficMatrix({}))


class TestParallelCampaign:
    def test_parallel_equals_serial(self):
        from repro.core.prompts import PromptStyle
        from repro.experiments import run_campaign

        styles = [PromptStyle.MONOLITHIC, PromptStyle.MODULAR_PSEUDOCODE]
        serial = run_campaign(["rps"], styles=styles, workers=1)
        parallel = run_campaign(["rps"], styles=styles, workers=4)
        assert list(parallel.reports) == list(serial.reports)
        for key, report in serial.reports.items():
            twin = parallel.reports[key]
            assert twin.succeeded == report.succeeded
            assert twin.num_prompts == report.num_prompts
            assert twin.total_prompt_words == report.total_prompt_words
            assert twin.reproduced_loc == report.reproduced_loc
        assert parallel.by_style() == serial.by_style()


class TestCampaignResultKeys:
    def make_result(self):
        from repro.experiments.campaign import CampaignResult

        result = CampaignResult()
        # Paper keys containing "/" used to be misparsed by the old
        # "paper/style".split("/", 1) key scheme: the style became
        # "ncflow/modular-pseudocode"-style garbage.  Tuple keys keep the
        # two dimensions separate no matter what the key contains.
        ok = types.SimpleNamespace(succeeded=True)
        failed = types.SimpleNamespace(succeeded=False)
        result.reports[CampaignResult.key("sigcomm/ncflow", "monolithic")] = ok
        result.reports[CampaignResult.key("sigcomm/arrow", "monolithic")] = failed
        result.reports[CampaignResult.key("sigcomm/ncflow", "modular-text")] = ok
        return result

    def test_slash_in_paper_key_groups_by_style(self):
        table = self.make_result().by_style()
        assert table == {
            "monolithic": {"ok": 1, "failed": 1},
            "modular-text": {"ok": 1, "failed": 0},
        }

    def test_key_accepts_enum_and_string(self):
        from repro.core.prompts import PromptStyle
        from repro.experiments.campaign import CampaignResult

        assert CampaignResult.key("ap", PromptStyle.MONOLITHIC) == (
            "ap", "monolithic"
        )
        assert CampaignResult.key("ap", "monolithic") == ("ap", "monolithic")

    def test_label_round_trip(self):
        from repro.experiments.campaign import CampaignResult

        key = CampaignResult.key("sigcomm/ncflow", "monolithic")
        assert CampaignResult.label(key) == "sigcomm/ncflow/monolithic"
        assert key[0] == "sigcomm/ncflow"
