"""Tests for the unified TE solver layer: registry, backends, tunnel cache.

The equivalence tests are the refactor's safety net: every registered
solver must return *bitwise-identical* objectives to the pre-refactor
direct entry points on fixed instances.
"""

import io

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.lp import FastLPBackend, SlowLPBackend
from repro.netmodel.topology import Topology
from repro.netmodel.traffic import TrafficMatrix
from repro.te import (
    TUNNEL_CACHE,
    registry,
    solve_fleischer,
    solve_max_flow,
    solve_max_flow_edge,
    solve_min_mlu,
    topology_fingerprint,
)
from repro.te.arrow import ArrowSolver, single_fiber_scenarios
from repro.te.ncflow import NCFlowSolver

ALL_SOLVERS = [
    "arrow-code", "arrow-none", "arrow-paper", "arrow-ticket",
    "edge", "fleischer", "mlu", "ncflow", "pf4",
]


def two_cluster_topology():
    """Two triangles joined by two cross links; fibers on every link."""
    topo = Topology("two-cluster")
    left = ["a1", "a2", "a3"]
    right = ["b1", "b2", "b3"]
    for node in left + right:
        topo.add_node(node)
    for group in (left, right):
        for i in range(3):
            topo.add_bidi_link(group[i], group[(i + 1) % 3], 10.0)
    topo.add_bidi_link("a1", "b1", 6.0)
    topo.add_bidi_link("a3", "b2", 4.0)
    return topo


def cross_traffic():
    return TrafficMatrix({
        ("a1", "b3"): 5.0,
        ("a2", "b2"): 4.0,
        ("b1", "a2"): 3.0,
        ("a1", "a3"): 2.0,
        ("b2", "b3"): 1.5,
    })


class TestRegistryBasics:
    def test_all_solvers_registered(self):
        assert registry.solver_names() == ALL_SOLVERS

    def test_unknown_name_suggests_close_matches(self):
        with pytest.raises(registry.UnknownSolverError) as excinfo:
            registry.make_solver("ncflw")
        assert "ncflow" in str(excinfo.value)
        assert "ncflow" in excinfo.value.suggestions

    def test_spec_lookup_and_capabilities(self):
        spec = registry.get_spec("edge")
        assert spec.capabilities.exact
        assert not spec.capabilities.uses_tunnels
        assert not registry.get_spec("fleischer").capabilities.uses_lp
        assert registry.get_spec("arrow-code").capabilities.failure_aware

    def test_solver_satisfies_protocol(self):
        solver = registry.make_solver("pf4")
        assert isinstance(solver, registry.TESolver)
        assert solver.name == "pf4"

    def test_duplicate_registration_rejected(self):
        spec = registry.get_spec("pf4")
        with pytest.raises(ValueError):
            registry.register(spec)
        # replace=True re-registers in place (used by extensions).
        registry.register(spec, replace=True)

    def test_solve_calls_counted(self):
        obs.metrics.reset()
        registry.solve("pf4", two_cluster_topology(), cross_traffic())
        assert obs.metrics.counter("solver.solve_calls").value == 1
        assert obs.metrics.counter("solver.solve_calls", solver="pf4").value == 1


class TestRegistryEquivalence:
    """Registry-resolved solvers == pre-refactor direct entry points."""

    topo = two_cluster_topology()
    traffic = cross_traffic()

    def assert_same(self, via_registry, direct):
        assert via_registry.objective == direct.objective
        assert via_registry.flow_per_commodity == direct.flow_per_commodity
        assert via_registry.status == direct.status

    def test_pf4(self):
        self.assert_same(
            registry.solve("pf4", self.topo, self.traffic),
            solve_max_flow(self.topo, self.traffic),
        )

    def test_edge(self):
        self.assert_same(
            registry.solve("edge", self.topo, self.traffic),
            solve_max_flow_edge(self.topo, self.traffic),
        )

    def test_mlu(self):
        self.assert_same(
            registry.solve("mlu", self.topo, self.traffic),
            solve_min_mlu(self.topo, self.traffic),
        )

    def test_fleischer(self):
        self.assert_same(
            registry.solve("fleischer", self.topo, self.traffic),
            solve_fleischer(self.topo, self.traffic),
        )

    def test_ncflow(self):
        self.assert_same(
            registry.solve("ncflow", self.topo, self.traffic),
            NCFlowSolver().solve(self.topo, self.traffic),
        )

    @pytest.mark.parametrize("variant", ["paper", "code", "none", "ticket"])
    def test_arrow_variants(self, variant):
        scenarios = single_fiber_scenarios(self.topo, limit=4)
        self.assert_same(
            registry.solve(
                f"arrow-{variant}", self.topo, self.traffic,
                scenarios=scenarios,
            ),
            ArrowSolver(variant=variant).solve(self.topo, self.traffic, scenarios),
        )

    def test_backend_injection_by_name_and_instance(self):
        by_name = registry.solve("pf4", self.topo, self.traffic, backend="slow")
        by_instance = registry.solve(
            "pf4", self.topo, self.traffic, backend=SlowLPBackend()
        )
        default = registry.solve(
            "pf4", self.topo, self.traffic, backend=FastLPBackend()
        )
        assert by_name.objective == pytest.approx(default.objective)
        assert by_instance.objective == pytest.approx(default.objective)

    def test_options_forwarded(self):
        k1 = registry.solve("pf4", self.topo, self.traffic, num_paths=1)
        k4 = registry.solve("pf4", self.topo, self.traffic, num_paths=4)
        assert k1.objective <= k4.objective + 1e-9


@st.composite
def random_instance(draw):
    """Small connected topology (ring + chords) with integer demands."""
    n = draw(st.integers(min_value=4, max_value=6))
    nodes = [f"n{i}" for i in range(n)]
    topo = Topology("random")
    for node in nodes:
        topo.add_node(node)
    for i in range(n):
        cap = draw(st.integers(min_value=1, max_value=20))
        topo.add_bidi_link(nodes[i], nodes[(i + 1) % n], float(cap))
    chords = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=3,
    ))
    for a, b in chords:
        if a != b and not topo.has_link(nodes[a], nodes[b]):
            cap = draw(st.integers(min_value=1, max_value=20))
            topo.add_bidi_link(nodes[a], nodes[b], float(cap))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=1, max_size=5,
    ))
    demands = {}
    for a, b in pairs:
        if a != b:
            demands[(nodes[a], nodes[b])] = float(
                draw(st.integers(min_value=1, max_value=15))
            )
    return topo, TrafficMatrix(demands)


class TestObjectiveBounds:
    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(random_instance())
    def test_every_max_flow_solver_bounded_by_edge_optimum(self, instance):
        topo, traffic = instance
        exact = solve_max_flow_edge(topo, traffic).objective
        for name in registry.solver_names():
            spec = registry.get_spec(name)
            if spec.capabilities.objective != "max-flow":
                continue
            solution = registry.solve(name, topo, traffic)
            assert solution.objective >= -1e-9, name
            assert solution.objective <= exact * (1 + 1e-6) + 1e-6, name


class TestTunnelCache:
    def test_fingerprint_ignores_capacities_but_not_structure(self):
        a = two_cluster_topology()
        b = two_cluster_topology()
        b.set_capacity("a1", "b1", 1.0)
        assert topology_fingerprint(a) == topology_fingerprint(b)
        b.add_bidi_link("a2", "b3", 5.0)
        assert topology_fingerprint(a) != topology_fingerprint(b)

    def test_hit_after_miss_and_metrics(self):
        topo, traffic = two_cluster_topology(), cross_traffic()
        TUNNEL_CACHE.clear()
        obs.metrics.reset()
        first = registry.solve("pf4", topo, traffic)
        after_first = TUNNEL_CACHE.stats()
        assert after_first["misses"] >= 1
        second = registry.solve("pf4", topo, traffic.scaled(2.0))
        after_second = TUNNEL_CACHE.stats()
        assert after_second["hits"] == after_first["hits"] + 1
        assert after_second["misses"] == after_first["misses"]
        assert obs.metrics.counter("tunnel_cache.hit").value >= 1
        assert second.objective >= first.objective - 1e-6

    def test_caller_copies_do_not_poison_cache(self):
        from repro.te import cached_k_shortest_tunnels

        topo, traffic = two_cluster_topology(), cross_traffic()
        TUNNEL_CACHE.clear()
        tunnels = cached_k_shortest_tunnels(topo, traffic, 2)
        tunnels.clear()
        again = cached_k_shortest_tunnels(topo, traffic, 2)
        assert again, "cache entry must survive mutation of the returned dict"
        assert TUNNEL_CACHE.stats()["hits"] == 1

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            TUNNEL_CACHE.lookup(two_cluster_topology(), cross_traffic(), 0)

    def test_lru_eviction_bounds_entries(self):
        from repro.te import TunnelCache

        cache = TunnelCache(max_entries=2)
        topo = two_cluster_topology()
        traffic = cross_traffic()
        for k in (1, 2, 3):
            cache.lookup(topo, traffic, k)
        assert cache.size == 2
        # k=1 was evicted; looking it up again is a miss.
        cache.lookup(topo, traffic, 1)
        assert cache.stats()["misses"] == 4


class TestTeCLI:
    def run_cli(self, argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_solver_list(self):
        code, text = self.run_cli(["te", "--solver", "list"])
        assert code == 0
        for name in ALL_SOLVERS:
            assert name in text
        assert "failure-aware" in text

    def test_unknown_solver_clean_error_with_suggestion(self):
        code, text = self.run_cli(["te", "B4", "--solver", "ncflw"])
        assert code == 2
        assert "unknown TE solver" in text
        assert "ncflow" in text

    def test_solve_with_injected_backend(self):
        code, text = self.run_cli([
            "te", "B4", "--solver", "pf4", "--commodities", "20",
            "--lp-backend", "slow",
        ])
        assert code == 0
        assert "pf4:" in text

    def test_mlu_output_format(self):
        code, text = self.run_cli([
            "te", "B4", "--solver", "mlu", "--commodities", "20",
        ])
        assert code == 0
        assert "MLU" in text

    def test_parallel_sweep_reports_cache_hits(self):
        code, text = self.run_cli([
            "te", "B4", "--solver", "pf4", "--commodities", "20",
            "--sweep", "0.5,1.0,2.0", "--workers", "2", "--metrics",
        ])
        assert code == 0
        assert "scale 0.5" in text and "scale 2" in text
        assert "tunnel_cache.hit" in text
        for line in text.splitlines():
            if line.startswith("tunnel_cache.hit"):
                assert int(line.split()[-1]) >= 2
                break
        else:  # pragma: no cover - assertion above guards this
            pytest.fail("tunnel_cache.hit metric missing")
