"""Tests for the Topology wrapper."""

import pytest

from repro.netmodel.topology import Topology


def ring(n=5, capacity=10.0):
    topo = Topology("ring")
    names = [f"n{i}" for i in range(n)]
    for name in names:
        topo.add_node(name)
    for i in range(n):
        topo.add_bidi_link(names[i], names[(i + 1) % n], capacity)
    return topo, names


class TestConstruction:
    def test_counts(self):
        topo, _ = ring(5)
        assert topo.num_nodes == 5
        assert topo.num_links == 10  # bidi -> two directed

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(ValueError):
            topo.add_link("a", "a", 1.0)

    def test_negative_capacity_rejected(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        with pytest.raises(ValueError):
            topo.add_link("a", "b", -1.0)

    def test_bidi_shares_fiber(self):
        topo = Topology()
        for node in ("a", "b"):
            topo.add_node(node)
        topo.add_bidi_link("a", "b", 5.0)
        assert topo.fiber_of("a", "b") == topo.fiber_of("b", "a")
        assert topo.fibers() == [topo.fiber_of("a", "b")]

    def test_links_on_fiber(self):
        topo, names = ring(4)
        fiber = topo.fiber_of(names[0], names[1])
        links = topo.links_on_fiber(fiber)
        assert len(links) == 2
        assert {(l.src, l.dst) for l in links} == {
            (names[0], names[1]),
            (names[1], names[0]),
        }


class TestQueries:
    def test_capacity_roundtrip(self):
        topo, names = ring(4, capacity=7.5)
        assert topo.capacity(names[0], names[1]) == 7.5
        topo.set_capacity(names[0], names[1], 2.5)
        assert topo.capacity(names[0], names[1]) == 2.5

    def test_set_negative_capacity_rejected(self):
        topo, names = ring(3)
        with pytest.raises(ValueError):
            topo.set_capacity(names[0], names[1], -1)

    def test_successors_sorted(self):
        topo, names = ring(5)
        succ = topo.successors(names[0])
        assert succ == sorted(succ)

    def test_total_capacity(self):
        topo, _ = ring(4, capacity=3.0)
        assert topo.total_capacity() == pytest.approx(8 * 3.0)

    def test_contains(self):
        topo, names = ring(3)
        assert names[0] in topo
        assert "missing" not in topo


class TestAlgorithms:
    def test_shortest_path(self):
        topo, names = ring(6)
        path = topo.shortest_path(names[0], names[3])
        assert path[0] == names[0] and path[-1] == names[3]
        assert len(path) == 4  # 3 hops either way around the ring

    def test_shortest_path_unreachable(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        assert topo.shortest_path("a", "b") is None

    def test_k_shortest_paths(self):
        topo, names = ring(6)
        paths = topo.k_shortest_paths(names[0], names[3], 5)
        assert len(paths) == 2  # both directions around the ring
        assert all(path[0] == names[0] for path in paths)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_k_shortest_same_node(self):
        topo, names = ring(3)
        assert topo.k_shortest_paths(names[0], names[0], 3) == [[names[0]]]

    def test_is_connected(self):
        topo, _ = ring(4)
        assert topo.is_connected()
        lonely = Topology()
        lonely.add_node("a")
        lonely.add_node("b")
        assert not lonely.is_connected()

    def test_subgraph(self):
        topo, names = ring(5)
        sub = topo.subgraph(names[:3])
        assert sub.num_nodes == 3
        # ring edges between n0-n1 and n1-n2 survive; n2-n3 does not.
        assert sub.has_link(names[0], names[1])
        assert not sub.has_link(names[2], names[3])

    def test_without_fibers(self):
        topo, names = ring(4)
        fiber = topo.fiber_of(names[0], names[1])
        cut = topo.without_fibers([fiber])
        assert not cut.has_link(names[0], names[1])
        assert not cut.has_link(names[1], names[0])
        assert cut.num_links == topo.num_links - 2

    def test_copy_is_independent(self):
        topo, names = ring(3)
        clone = topo.copy()
        clone.set_capacity(names[0], names[1], 99.0)
        assert topo.capacity(names[0], names[1]) != 99.0
