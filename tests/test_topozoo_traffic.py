"""Tests for the synthetic topology catalog and traffic matrices."""

import pytest

from repro.netmodel.instances import arrow_instances, make_te_instance
from repro.netmodel.topozoo import (
    ARROW_INSTANCE_NAMES,
    NCFLOW_INSTANCE_NAMES,
    VERIFICATION_DATASET_NAMES,
    make_topology,
    topology_catalog,
)
from repro.netmodel.traffic import (
    TrafficMatrix,
    gravity_traffic_matrix,
    uniform_traffic_matrix,
)


class TestCatalog:
    def test_instance_name_counts(self):
        assert len(NCFLOW_INSTANCE_NAMES) == 13  # participant A's 13 instances
        assert len(ARROW_INSTANCE_NAMES) == 2  # participant B's 2 instances
        assert len(VERIFICATION_DATASET_NAMES) == 4  # participant C's 4 datasets

    def test_all_catalog_names_buildable_and_connected(self):
        for spec in topology_catalog():
            topo = make_topology(spec.name)
            assert topo.num_nodes == spec.num_nodes
            assert topo.is_connected(), f"{spec.name} must be connected"

    def test_deterministic(self):
        a = make_topology("B4")
        b = make_topology("B4")
        assert [(l.src, l.dst, l.capacity) for l in a.links()] == [
            (l.src, l.dst, l.capacity) for l in b.links()
        ]

    def test_different_names_differ(self):
        a = make_topology("B4")
        b = make_topology("IbmBackbone")
        assert a.num_nodes != b.num_nodes

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_topology("NoSuchNet")

    def test_all_links_have_fibers(self):
        topo = make_topology("Internet2")
        assert all(link.fiber_id is not None for link in topo.links())


class TestTrafficMatrix:
    def test_gravity_total_scaled(self):
        topo = make_topology("B4")
        matrix = gravity_traffic_matrix(topo, seed=1, total_demand_fraction=0.1)
        assert matrix.total_demand == pytest.approx(topo.total_capacity() * 0.1)

    def test_gravity_deterministic(self):
        topo = make_topology("B4")
        a = gravity_traffic_matrix(topo, seed=5)
        b = gravity_traffic_matrix(topo, seed=5)
        assert a.demands == b.demands

    def test_gravity_seed_changes_matrix(self):
        topo = make_topology("B4")
        a = gravity_traffic_matrix(topo, seed=5)
        b = gravity_traffic_matrix(topo, seed=6)
        assert a.demands != b.demands

    def test_max_commodities_cap(self):
        topo = make_topology("Colt")
        matrix = gravity_traffic_matrix(topo, seed=1, max_commodities=50)
        assert matrix.num_commodities <= 50

    def test_invalid_fraction(self):
        topo = make_topology("B4")
        with pytest.raises(ValueError):
            gravity_traffic_matrix(topo, seed=1, total_demand_fraction=0.0)

    def test_top_k(self):
        matrix = TrafficMatrix({("a", "b"): 5.0, ("b", "c"): 1.0, ("c", "a"): 3.0})
        top = matrix.top_k(2)
        assert set(top.demands) == {("a", "b"), ("c", "a")}

    def test_scaled(self):
        matrix = TrafficMatrix({("a", "b"): 5.0})
        assert matrix.scaled(2.0).demand("a", "b") == 10.0

    def test_commodities_sorted_nonzero(self):
        matrix = TrafficMatrix({("b", "c"): 0.0, ("a", "b"): 2.0})
        assert matrix.commodities() == [("a", "b", 2.0)]

    def test_uniform(self):
        topo = make_topology("Internet2")
        matrix = uniform_traffic_matrix(topo, 1.0)
        n = topo.num_nodes
        assert matrix.num_commodities == n * (n - 1)


class TestInstances:
    def test_make_te_instance_deterministic(self):
        a = make_te_instance("B4")
        b = make_te_instance("B4")
        assert a.traffic.demands == b.traffic.demands

    def test_arrow_instances(self):
        instances = arrow_instances(max_commodities=40)
        assert [inst.name for inst in instances] == ARROW_INSTANCE_NAMES
        assert all(inst.num_commodities <= 40 for inst in instances)
