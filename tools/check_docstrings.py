#!/usr/bin/env python3
"""Docstring-coverage lint for the packages that document the contract.

Walks the given source trees and requires a docstring on:

* every module;
* every public class and public function/method (name not starting
  with ``_``), including public methods of public classes.

``@property`` getters, ``__init__``, and anything underscore-prefixed
are exempt -- the class docstring carries their contract.  Overridden
methods are NOT exempt: a subclass that re-specifies behaviour should
say how.

Usage::

    python tools/check_docstrings.py                 # the enforced set
    python tools/check_docstrings.py src/repro/te    # any tree

Exit status is the number of missing docstrings (0 = clean), so CI can
gate on it directly.  The enforced default set is ``src/repro/bench``,
``src/repro/fuzz``, ``src/repro/lp``, ``src/repro/resilience``,
``src/repro/serve``, ``src/repro/shard``, and ``src/repro/store``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Trees linted when no arguments are given (the CI-enforced set).
DEFAULT_TREES = (
    "src/repro/bench", "src/repro/fuzz", "src/repro/lp",
    "src/repro/resilience", "src/repro/serve", "src/repro/shard",
    "src/repro/store",
)

#: Decorator names whose presence exempts a function from the lint.
EXEMPT_DECORATORS = {"property", "cached_property", "overload"}


def _decorator_name(node: ast.expr) -> str:
    """Best-effort dotted-name tail of a decorator expression."""
    while isinstance(node, ast.Call):
        node = node.func
    while isinstance(node, ast.Attribute):
        node = node.attr if isinstance(node.attr, ast.expr) else node.attr
        if isinstance(node, str):
            return node
    return node.id if isinstance(node, ast.Name) else ""


def _is_public(name: str) -> bool:
    """Public means no leading underscore (dunders are not public)."""
    return not name.startswith("_")


def missing_docstrings(path: Path) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, qualified name)`` for every lint finding in a file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    if ast.get_docstring(tree) is None:
        yield 1, "<module>"

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[int, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not _is_public(child.name):
                    continue
                decorators = {
                    _decorator_name(d) for d in child.decorator_list
                }
                if decorators & EXEMPT_DECORATORS:
                    continue
                if ast.get_docstring(child) is None:
                    yield child.lineno, f"{prefix}{child.name}"
            elif isinstance(child, ast.ClassDef):
                if not _is_public(child.name):
                    continue
                if ast.get_docstring(child) is None:
                    yield child.lineno, f"{prefix}{child.name}"
                yield from walk(child, f"{prefix}{child.name}.")

    yield from walk(tree, "")


def lint_trees(trees: List[str]) -> List[str]:
    """Lint every ``.py`` file under each tree; returns finding lines."""
    findings = []
    for tree in trees:
        root = Path(tree)
        if not root.exists():
            findings.append(f"{tree}: tree does not exist")
            continue
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            for lineno, name in missing_docstrings(path):
                findings.append(f"{path}:{lineno}: missing docstring: {name}")
    return findings


def main(argv: List[str]) -> int:
    """CLI entry point; returns the number of findings."""
    trees = argv or list(DEFAULT_TREES)
    findings = lint_trees(trees)
    for line in findings:
        print(line)
    if findings:
        print(f"{len(findings)} missing docstring(s) in: {', '.join(trees)}")
    else:
        print(f"docstring coverage ok: {', '.join(trees)}")
    return len(findings)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
