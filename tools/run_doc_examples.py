#!/usr/bin/env python3
"""Execute the example commands in the documentation, as written.

Documentation drifts when flags are renamed or outputs change shape;
this tool makes the docs' examples executable artifacts instead of
prose.  For every markdown file given (default: ``docs/*.md``):

* ```` ```bash ```` blocks run under ``bash -e``, in file order, in a
  per-file scratch directory seeded with symlinks to the repo's
  top-level entries -- so relative paths (``benchmarks/``, ``docs/``)
  resolve while artifacts the examples write (``run.jsonl``,
  ``results/``, ``BENCH_*.json``) land in the scratch area, not the
  checkout.  Blocks in one file share the scratch directory, so a later
  block may consume an earlier block's output (e.g. ``trace-view`` on a
  just-recorded trace).
* ```` ```python ```` blocks are always compiled (syntax-checked).  A
  file that opts in with a ``<!-- doc-examples: exec-python -->``
  marker additionally has its python blocks *executed* sequentially in
  one shared namespace, tutorial-style.  Reference docs whose snippets
  are intentionally fragmentary stay compile-only.
* untagged / other-language fences (rendered output, tables) are ignored.

Usage::

    python tools/run_doc_examples.py                  # all of docs/*.md
    python tools/run_doc_examples.py docs/TUTORIAL.md
    python tools/run_doc_examples.py --fast           # skip pytest blocks

``--fast`` skips bash blocks that invoke ``pytest`` (the benchmark
suites take minutes; CI smoke wants seconds).  Exit status is the
number of failing blocks.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import os
import re
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
EXEC_PYTHON_MARKER = "<!-- doc-examples: exec-python -->"
_FENCE = re.compile(r"^```(\w*)\s*$")


@dataclass
class Block:
    """One fenced code block: where it is, what language, its body."""

    path: Path
    lineno: int
    language: str
    body: str

    @property
    def label(self) -> str:
        """``file:line`` anchor for reports."""
        return f"{self.path}:{self.lineno}"


def extract_blocks(path: Path) -> List[Block]:
    """All fenced blocks of a markdown file, in document order."""
    blocks: List[Block] = []
    language = None
    body: List[str] = []
    start = 0
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _FENCE.match(line)
        if match and language is None:
            language = match.group(1)
            body = []
            start = lineno
        elif line.strip() == "```" and language is not None:
            blocks.append(Block(path, start, language, "\n".join(body)))
            language = None
        elif language is not None:
            body.append(line)
    return blocks


def make_scratch_dir(base: Path) -> Path:
    """A scratch cwd wired to the repo: symlink every top-level entry."""
    scratch = Path(tempfile.mkdtemp(prefix="doc-examples-", dir=base))
    for entry in REPO_ROOT.iterdir():
        if entry.name.startswith(".") or entry.name.startswith("BENCH_"):
            continue
        (scratch / entry.name).symlink_to(entry)
    return scratch


def run_bash_block(block: Block, cwd: Path, timeout: float) -> str:
    """Run one bash block; returns "" on success, the failure otherwise."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{REPO_ROOT / 'src'}:{env['PYTHONPATH']}"
        if env.get("PYTHONPATH") else str(REPO_ROOT / "src")
    )
    try:
        proc = subprocess.run(
            ["bash", "-e"], input=block.body, text=True, cwd=cwd, env=env,
            capture_output=True, timeout=timeout,
        )
    except subprocess.TimeoutExpired:
        return f"{block.label}: bash block timed out after {timeout:g}s"
    if proc.returncode != 0:
        tail = "\n".join(
            (proc.stdout + proc.stderr).splitlines()[-15:]
        )
        return (
            f"{block.label}: bash block exited {proc.returncode}\n{tail}"
        )
    return ""


def check_python_block(block: Block, namespace: dict, execute: bool) -> str:
    """Compile (and optionally exec) one python block; "" on success."""
    try:
        code = compile(block.body, str(block.path), "exec")
    except SyntaxError as exc:
        return f"{block.label}: python block does not compile: {exc}"
    if not execute:
        return ""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        with contextlib.redirect_stdout(io.StringIO()):
            exec(code, namespace)
    except Exception as exc:  # noqa: BLE001 - report any example failure
        return f"{block.label}: python block raised {type(exc).__name__}: {exc}"
    finally:
        sys.path.remove(str(REPO_ROOT / "src"))
    return ""


def check_file(path: Path, fast: bool, timeout: float) -> List[str]:
    """Run every example block of one docs file; returns failures."""
    text = path.read_text()
    exec_python = EXEC_PYTHON_MARKER in text
    blocks = extract_blocks(path)
    failures: List[str] = []
    namespace: dict = {"__name__": f"doc_examples_{path.stem}"}
    with tempfile.TemporaryDirectory(prefix="doc-scratch-") as base:
        scratch = make_scratch_dir(Path(base))
        for block in blocks:
            if block.language == "bash":
                if fast and "pytest" in block.body:
                    print(f"  skip (pytest, --fast)  {block.label}")
                    continue
                error = run_bash_block(block, scratch, timeout)
            elif block.language == "python":
                error = check_python_block(block, namespace, exec_python)
            else:
                continue
            verb = {
                "bash": "ran",
                "python": "executed" if exec_python else "compiled",
            }[block.language]
            if error:
                failures.append(error)
                print(f"  FAIL                   {block.label}")
            else:
                print(f"  {verb:<22} {block.label}")
    return failures


def main(argv: List[str]) -> int:
    """CLI entry point; returns the number of failing blocks."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*", type=Path,
        default=sorted((REPO_ROOT / "docs").glob("*.md")),
        help="markdown files to check (default: docs/*.md)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="skip bash blocks that invoke pytest",
    )
    parser.add_argument(
        "--timeout", type=float, default=900.0, metavar="S",
        help="per-block timeout in seconds (default 900)",
    )
    args = parser.parse_args(argv)
    failures: List[str] = []
    for path in args.files:
        print(f"{path}:")
        failures.extend(check_file(path, args.fast, args.timeout))
    if failures:
        print(f"\n{len(failures)} failing example block(s):")
        for failure in failures:
            print(failure)
    else:
        print("\nall documentation examples ok")
    return len(failures)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
